// End-to-end tests for the spine serve network front-end: responses
// over the wire match in-process execution exactly, admission control
// sheds with kOverloaded instead of stalling, graceful drain answers
// everything already accepted, and protocol violations kill the
// connection cleanly — never the server.

#include "serve/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include <gtest/gtest.h>

#include "common/timer.h"
#include "compact/compact_spine.h"
#include "compact/serializer.h"
#include "core/adapters.h"
#include "core/query.h"
#include "core/registry.h"
#include "core/wire.h"
#include "obs/json.h"
#include "serve/client.h"
#include "shard/dynamic_family.h"
#include "shard/sharded_index.h"
#include "storage/disk_spine.h"
#include "storage/io_backend.h"
#include "test_util.h"

namespace spine::serve {
namespace {

namespace wire = core::wire;
using spine::test::TestCorpus;

// One shared fixture corpus/index per binary: building the index once
// keeps the suite fast, and every test treats it as read-only.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new std::string(TestCorpus(20000));
    index_ = new CompactSpineIndex(Alphabet::Dna());
    ASSERT_TRUE(index_->AppendString(*corpus_).ok());
    adapter_ = new core::CompactSpineAdapter(*index_);
  }
  static void TearDownTestSuite() {
    delete adapter_;
    delete index_;
    delete corpus_;
    adapter_ = nullptr;
    index_ = nullptr;
    corpus_ = nullptr;
  }

  // A deterministic mixed-kind query stream; `salt` decorrelates the
  // streams of concurrent clients.
  static Query NthQuery(size_t i, size_t salt) {
    const size_t len = 6 + (i * 7 + salt) % 20;
    const size_t offset = (i * 131 + salt * 977) % (corpus_->size() - 128);
    std::string pattern = corpus_->substr(offset, len);
    switch (i % 4) {
      case 0:
        return Query::FindAll(pattern);
      case 1:
        return Query::Contains(pattern);
      case 2:
        return Query::MaximalMatches(corpus_->substr(offset, 64), 8);
      default:
        return Query::MatchingStats(corpus_->substr(offset, 32));
    }
  }

  static std::string* corpus_;
  static CompactSpineIndex* index_;
  static core::CompactSpineAdapter* adapter_;
};

std::string* ServeTest::corpus_ = nullptr;
CompactSpineIndex* ServeTest::index_ = nullptr;
core::CompactSpineAdapter* ServeTest::adapter_ = nullptr;

Options TestOptions() {
  Options options;
  options.port = 0;  // ephemeral
  options.threads = 4;
  return options;
}

TEST_F(ServeTest, ConcurrentClientsMatchInProcessExecutionExactly) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  constexpr int kClients = 4;
  constexpr size_t kQueriesPerClient = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<Client> client = Client::Connect("127.0.0.1", server.port(),
                                              /*json=*/c % 2 == 1);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (size_t i = 0; i < kQueriesPerClient; ++i) {
        const Query query = NthQuery(i, static_cast<size_t>(c));
        const uint64_t id = static_cast<uint64_t>(c) * 1000 + i;
        if (!client->Send({id, query}).ok()) {
          ++failures;
          return;
        }
        Result<wire::QueryResponse> response = client->ReceiveResponse();
        if (!response.ok() || response->id != id) {
          ++failures;
          return;
        }
        // The ground truth: the same Index the server wraps, executed
        // in-process. The wire answer must be payload-identical.
        const QueryResult oracle = adapter_->Execute(query);
        if (!response->result.SameAnswer(oracle)) ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  server.Stop();
}

TEST_F(ServeTest, PipelinedRequestsAnswerInOrderAfterClientEof) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  constexpr size_t kCount = 40;
  std::string burst;
  for (size_t i = 0; i < kCount; ++i) {
    wire::AppendRequestFrame({i, NthQuery(i, 3)}, &burst);
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());
  // EOF-drain path: the server must answer every frame it received
  // before the half-close, then close the connection.
  client->ShutdownSend();
  for (size_t i = 0; i < kCount; ++i) {
    Result<wire::QueryResponse> response = client->ReceiveResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString() << " at "
                               << i;
    EXPECT_EQ(response->id, i);  // responses arrive in request order
    EXPECT_TRUE(
        response->result.SameAnswer(adapter_->Execute(NthQuery(i, 3))));
  }
  EXPECT_FALSE(client->ReceiveResponse().ok());  // clean EOF afterwards
  server.Stop();
}

TEST_F(ServeTest, SaturatingBurstShedsWithOverloadedAndAnswersEverything) {
  Options options = TestOptions();
  options.threads = 1;
  options.queue_cap = 1;     // admit one query per batch window
  options.max_inflight = 1;  // and one across the server
  Server server(*adapter_, options);
  ASSERT_TRUE(server.Start().ok());

  // A saturating burst in one write: the reader drains it in few batch
  // windows, each admitting queue_cap=1 and shedding the rest. Retried
  // because TCP may (rarely) deliver the burst in many tiny chunks,
  // giving every window just one admittable query.
  constexpr size_t kBurst = 400;
  bool shed_seen = false;
  for (int attempt = 0; attempt < 5 && !shed_seen; ++attempt) {
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    std::string burst;
    for (size_t i = 0; i < kBurst; ++i) {
      wire::AppendRequestFrame({i, NthQuery(i, 7)}, &burst);
    }
    ASSERT_TRUE(client->SendRaw(burst).ok());
    client->ShutdownSend();

    size_t ok_answers = 0;
    size_t overloaded = 0;
    for (size_t i = 0; i < kBurst; ++i) {
      Result<wire::QueryResponse> response = client->ReceiveResponse();
      ASSERT_TRUE(response.ok()) << response.status().ToString() << " at "
                                 << i;
      EXPECT_EQ(response->id, i);
      if (response->result.status_code == StatusCode::kOverloaded) {
        EXPECT_FALSE(response->result.error.empty());
        ++overloaded;
      } else {
        // Admitted queries answer correctly even under saturation.
        EXPECT_TRUE(
            response->result.SameAnswer(adapter_->Execute(NthQuery(i, 7))));
        ++ok_answers;
      }
    }
    // Shed or not, every single request got exactly one response.
    EXPECT_EQ(ok_answers + overloaded, kBurst);
    shed_seen = overloaded > 0;
  }
  EXPECT_TRUE(shed_seen) << "a 400-request burst against queue_cap=1 "
                            "never shed in 5 attempts";
  EXPECT_GT(server.stats().shed, 0u);
  server.Stop();
}

TEST_F(ServeTest, GracefulDrainAnswersEveryAcceptedQuery) {
  Options options = TestOptions();
  // Wide-open admission: this test isolates drain behavior, and a shed
  // response would mask a lost one.
  options.queue_cap = 1024;
  options.max_inflight = 1024;
  Server server(*adapter_, options);
  ASSERT_TRUE(server.Start().ok());
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Warm-up round trip proves the connection is accepted and readable.
  ASSERT_TRUE(client->Send({0, Query::Contains("ACGT")}).ok());
  ASSERT_TRUE(client->ReceiveResponse().ok());

  constexpr size_t kCount = 100;
  std::string burst;
  for (size_t i = 1; i <= kCount; ++i) {
    wire::AppendRequestFrame({i, NthQuery(i, 11)}, &burst);
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());
  // Give loopback TCP time to land the burst in the server's receive
  // buffer, then drain: everything already accepted must be answered.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server.RequestDrain();
  EXPECT_TRUE(server.draining());

  for (size_t i = 1; i <= kCount; ++i) {
    Result<wire::QueryResponse> response = client->ReceiveResponse();
    ASSERT_TRUE(response.ok())
        << "query " << i << " lost in drain: " << response.status().ToString();
    EXPECT_EQ(response->id, i);
    EXPECT_TRUE(
        response->result.SameAnswer(adapter_->Execute(NthQuery(i, 11))));
  }
  EXPECT_FALSE(client->ReceiveResponse().ok());  // then EOF
  server.Stop();
  EXPECT_EQ(server.stats().queries, kCount + 1);
  EXPECT_EQ(server.stats().shed, 0u);

  // Draining servers refuse new connections outright.
  Result<Client> late = Client::Connect("127.0.0.1", server.port());
  if (late.ok()) {
    EXPECT_FALSE(late->ReceiveResponse().ok());
  }
}

TEST_F(ServeTest, StatsVerbReportsServerCountersOverBothDialects) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());

  for (const bool json : {false, true}) {
    Result<Client> client =
        Client::Connect("127.0.0.1", server.port(), json);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Send({1, Query::FindAll("ACGT")}).ok());
    ASSERT_TRUE(client->ReceiveResponse().ok());
    ASSERT_TRUE(client->SendStatsRequest().ok());
    Result<std::string> stats = client->ReceiveStatsJson();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();

    Result<obs::JsonValue> doc = obs::ParseJson(*stats);
    ASSERT_TRUE(doc.ok()) << *stats;
    const obs::JsonValue* serve = doc->Find("serve");
    ASSERT_NE(serve, nullptr);
    const obs::JsonValue* queries = serve->Find("queries");
    ASSERT_NE(queries, nullptr);
    EXPECT_GE(queries->number, 1.0);
    EXPECT_NE(doc->Find("schema_version"), nullptr);
    EXPECT_NE(doc->Find("metrics"), nullptr);
  }
  server.Stop();
}

TEST_F(ServeTest, ProtocolViolationsGetAnErrorAndCloseOnlyThatConnection) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());

  {  // Oversized length prefix.
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    std::string huge = {'\xff', '\xff', '\xff', '\x7f', 0, 0};
    ASSERT_TRUE(client->SendRaw(huge).ok());
    Result<wire::QueryResponse> response = client->ReceiveResponse();
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kProtocolError);
  }
  {  // Wrong version byte.
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    std::string frame;
    wire::AppendRequestFrame({1, Query::FindAll("ACGT")}, &frame);
    frame[4] = static_cast<char>(wire::kWireVersion + 1);
    ASSERT_TRUE(client->SendRaw(frame).ok());
    EXPECT_EQ(client->ReceiveResponse().status().code(),
              StatusCode::kProtocolError);
  }
  {  // A server-to-client frame type from a client.
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    std::string frame;
    wire::AppendResponseFrame({1, QueryResult{}}, &frame);
    ASSERT_TRUE(client->SendRaw(frame).ok());
    EXPECT_EQ(client->ReceiveResponse().status().code(),
              StatusCode::kProtocolError);
  }
  {  // JSON dialect: junk line.
    Result<Client> client =
        Client::Connect("127.0.0.1", server.port(), /*json=*/true);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendRaw("{this is not json}\n").ok());
    EXPECT_EQ(client->ReceiveResponse().status().code(),
              StatusCode::kProtocolError);
  }
  {  // A complete JSON line shorter than a frame header still selects
     // JSON mode (and fails the request parse) instead of stalling the
     // dialect sniff forever.
    Result<Client> client =
        Client::Connect("127.0.0.1", server.port(), /*json=*/true);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendRaw("{}\n").ok());
    EXPECT_EQ(client->ReceiveResponse().status().code(),
              StatusCode::kProtocolError);
  }
  {  // A trailing partial frame at EOF is dropped silently.
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendRaw(std::string("\x20\x00", 2)).ok());
    client->ShutdownSend();
    EXPECT_FALSE(client->ReceiveResponse().ok());
  }

  EXPECT_GE(server.stats().protocol_errors, 4u);
  // The server survives all of it: a fresh connection still works.
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Send({5, Query::Contains("ACGT")}).ok());
  Result<wire::QueryResponse> response = client->ReceiveResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->id, 5u);
  server.Stop();
}

TEST_F(ServeTest, BinaryFrameWhoseLengthLowByteIsBraceStaysBinary) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // A 95-byte pattern makes the frame length 123 (95 + 28 fixed bytes,
  // deadline and max_errors words included) — so the first wire byte is
  // '{' (0x7b, the little-endian low byte). The dialect sniff must
  // still classify the connection as binary, not kill it as malformed
  // JSON.
  const Query query = Query::FindAll(corpus_->substr(0, 95));
  std::string frame;
  wire::AppendRequestFrame({42, query}, &frame);
  ASSERT_EQ(frame[0], '{');  // the premise of the regression
  ASSERT_TRUE(client->SendRaw(frame).ok());

  Result<wire::QueryResponse> response = client->ReceiveResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->id, 42u);
  EXPECT_TRUE(response->result.SameAnswer(adapter_->Execute(query)));
  EXPECT_EQ(server.stats().protocol_errors, 0u);
  server.Stop();
}

TEST_F(ServeTest, NewlineFreeJsonStreamIsBoundedNotUnbounded) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> client =
      Client::Connect("127.0.0.1", server.port(), /*json=*/true);
  ASSERT_TRUE(client.ok());

  // Commit the connection to JSON mode, then stream past the frame cap
  // without ever sending a newline: the server must kill the
  // connection with a protocol error instead of buffering forever.
  ASSERT_TRUE(client->SendRaw("{\"v\":1,").ok());
  const std::string chunk(1 << 20, 'x');
  for (int i = 0; i <= 16; ++i) {
    // The server may close mid-stream; a failed send is the expected
    // way to find out.
    if (!client->SendRaw(chunk).ok()) break;
  }
  Result<wire::QueryResponse> response = client->ReceiveResponse();
  EXPECT_FALSE(response.ok());
  EXPECT_GE(server.stats().protocol_errors, 1u);
  server.Stop();
}

TEST_F(ServeTest, ConnectionLimitRejectsWithOverloadedErrorFrame) {
  Options options = TestOptions();
  options.max_connections = 1;
  Server server(*adapter_, options);
  ASSERT_TRUE(server.Start().ok());

  Result<Client> first = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Send({1, Query::Contains("ACGT")}).ok());
  ASSERT_TRUE(first->ReceiveResponse().ok());

  Result<Client> second = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(second.ok());  // TCP accepts; the server then rejects
  Result<wire::QueryResponse> rejected = second->ReceiveResponse();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);

  // The first connection is unaffected.
  ASSERT_TRUE(first->Send({2, Query::Contains("TTTT")}).ok());
  EXPECT_TRUE(first->ReceiveResponse().ok());
  server.Stop();
}

TEST_F(ServeTest, ServesAShardedFamilyIncludingItsErrorVerdicts) {
  shard::ShardedIndex::Options build;
  build.shards = 3;
  build.max_pattern = 16;
  Result<std::unique_ptr<shard::ShardedIndex>> family =
      shard::ShardedIndex::Build(Alphabet::Dna(), *corpus_, build);
  ASSERT_TRUE(family.ok()) << family.status().ToString();

  Server server(**family, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  const Query good = Query::FindAll(corpus_->substr(100, 12));
  ASSERT_TRUE(client->Send({1, good}).ok());
  Result<wire::QueryResponse> response = client->ReceiveResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->result.SameAnswer((*family)->Execute(good)));

  // An overlong pattern is a per-query backend error; it must travel
  // the wire as a statusful response, not break the connection.
  const Query too_long = Query::FindAll(corpus_->substr(0, 64));
  ASSERT_TRUE(client->Send({2, too_long}).ok());
  response = client->ReceiveResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->result.status_code, StatusCode::kInvalidArgument);

  ASSERT_TRUE(client->Send({3, good}).ok());
  EXPECT_TRUE(client->ReceiveResponse().ok());  // connection survives
  server.Stop();
}

TEST_F(ServeTest, StartFailuresReportCleanly) {
  Options bad_host = TestOptions();
  bad_host.host = "not-an-ip";
  Server server(*adapter_, bad_host);
  Status status = server.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  Server first(*adapter_, TestOptions());
  ASSERT_TRUE(first.Start().ok());
  Options taken = TestOptions();
  taken.port = first.port();
  Server second(*adapter_, taken);
  Status occupied = second.Start();
  ASSERT_FALSE(occupied.ok());
  EXPECT_EQ(occupied.code(), StatusCode::kIoError);
  first.Stop();
}

// --- deadlines, timeouts, and stall-proofing (PR 7) -------------------------

// A paged DiskSpine whose every backend read stalls: the serving-side
// acceptance rig for time-bounding. Stalls start disabled so the build
// runs at full speed; callers flip them on per test.
struct StallingDiskIndex {
  storage::FaultInjectingBackend backend;
  std::unique_ptr<storage::DiskSpine> disk;
  std::unique_ptr<core::DiskSpineAdapter> adapter;

  static std::unique_ptr<StallingDiskIndex> Make(const std::string& corpus,
                                                 const std::string& name) {
    auto rig = std::make_unique<StallingDiskIndex>();
    storage::DiskSpine::Options options;
    options.pool_frames = 4;  // tiny pool: queries keep missing pages
    options.backend = &rig->backend;
    auto disk = storage::DiskSpine::Create(Alphabet::Dna(),
                                           spine::test::TempPath(name),
                                           options);
    if (!disk.ok() || !(*disk)->AppendString(corpus).ok() ||
        !(*disk)->Flush().ok()) {
      return nullptr;
    }
    rig->disk = std::move(*disk);
    rig->adapter = std::make_unique<core::DiskSpineAdapter>(*rig->disk);
    return rig;
  }
};

// ISSUE acceptance: a findall against a paged backend under injected
// stall comes back kDeadlineExceeded well within ~2x the deadline,
// instead of grinding through every stalled page read.
TEST_F(ServeTest, StalledBackendDeadlineAnswersWithinBudget) {
  auto rig = StallingDiskIndex::Make(corpus_->substr(0, 6000), "serve_dl.idx");
  ASSERT_NE(rig, nullptr);
  Server server(*rig->adapter, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  rig->backend.EnableRandomStalls(/*seed=*/1, /*rate=*/1.0,
                                  /*micros=*/20'000);

  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  wire::QueryRequest request{7, Query::FindAll(corpus_->substr(0, 3))};
  request.query.deadline_ms = 50;
  WallTimer timer;
  ASSERT_TRUE(client->Send(request).ok());
  Result<wire::QueryResponse> response = client->ReceiveResponse();
  const double elapsed_ms = timer.ElapsedMillis();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->id, 7u);
  EXPECT_EQ(response->result.status_code, StatusCode::kDeadlineExceeded)
      << response->result.error;
  // Budget 50 ms; the worst-case overshoot is one in-flight 20 ms stall
  // plus scheduling noise. 200 ms keeps CI calm while still proving the
  // walk did not run to completion (which takes seconds at this rate).
  EXPECT_LT(elapsed_ms, 200.0);
  EXPECT_GE(server.stats().deadline_exceeded, 1u);
  server.Stop();
}

TEST_F(ServeTest, ServerDefaultAndMaxDeadlinesBoundRequests) {
  auto rig =
      StallingDiskIndex::Make(corpus_->substr(0, 6000), "serve_cap.idx");
  ASSERT_NE(rig, nullptr);
  Options options = TestOptions();
  options.default_deadline_ms = 50;  // requests that do not ask get this
  options.max_deadline_ms = 60;      // and nobody gets more than this
  Server server(*rig->adapter, options);
  ASSERT_TRUE(server.Start().ok());
  rig->backend.EnableRandomStalls(/*seed=*/2, /*rate=*/1.0,
                                  /*micros=*/20'000);

  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // No deadline on the request: the server default applies.
  WallTimer timer;
  ASSERT_TRUE(client->Send({1, Query::FindAll(corpus_->substr(0, 3))}).ok());
  Result<wire::QueryResponse> response = client->ReceiveResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->result.status_code, StatusCode::kDeadlineExceeded);
  EXPECT_LT(timer.ElapsedMillis(), 250.0);

  // A greedy hour-long budget: the cap cuts it to 60 ms.
  wire::QueryRequest greedy{2, Query::FindAll(corpus_->substr(0, 3))};
  greedy.query.deadline_ms = 3'600'000;
  timer.Reset();
  ASSERT_TRUE(client->Send(greedy).ok());
  response = client->ReceiveResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->result.status_code, StatusCode::kDeadlineExceeded);
  EXPECT_LT(timer.ElapsedMillis(), 250.0);

  EXPECT_GE(server.stats().deadline_exceeded, 2u);
  server.Stop();
}

TEST_F(ServeTest, IdleAndMidFrameTimeoutsCloseWithoutPinningThreads) {
  Options options = TestOptions();
  options.idle_timeout_ms = 200;
  options.read_timeout_ms = 200;
  Server server(*adapter_, options);
  ASSERT_TRUE(server.Start().ok());

  {  // Half-open client: connects, sends nothing, never reads.
    Result<Client> idle = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(idle.ok());
    // The server sends a best-effort deadline error and closes; either
    // the error status or a bare close (kIoError) is acceptable.
    WallTimer timer;
    Result<wire::QueryResponse> response = idle->ReceiveResponse();
    EXPECT_FALSE(response.ok());
    EXPECT_LT(timer.ElapsedMillis(), 2'000.0);
  }
  {  // Stuck mid-frame: a partial header, then silence.
    Result<Client> stuck = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(stuck.ok());
    ASSERT_TRUE(stuck->SendRaw(std::string("\x40\x00", 2)).ok());
    WallTimer timer;
    Result<wire::QueryResponse> response = stuck->ReceiveResponse();
    EXPECT_FALSE(response.ok());
    EXPECT_LT(timer.ElapsedMillis(), 2'000.0);
  }
  // Both connections were closed by the timeout machinery — and the
  // server still answers new traffic, proving no reader thread wedged.
  EXPECT_GE(server.stats().idle_closed, 2u);
  Result<Client> fresh = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh->Send({9, Query::Contains("ACGT")}).ok());
  EXPECT_TRUE(fresh->ReceiveResponse().ok());
  server.Stop();
  EXPECT_EQ(server.stats().connections_open, 0u);
}

// Satellite: a client killed mid-query (RST via SO_LINGER=0, the only
// close that trips POLLERR/POLLHUP — a polite FIN must keep the drain
// semantics) has its in-flight work cancelled by the watchdog, and the
// failed response write must not take the server down (SIGPIPE).
TEST_F(ServeTest, KilledClientMidQueryGetsCancelledByTheWatchdog) {
  auto rig =
      StallingDiskIndex::Make(corpus_->substr(0, 6000), "serve_kill.idx");
  ASSERT_NE(rig, nullptr);
  Server server(*rig->adapter, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  rig->backend.EnableRandomStalls(/*seed=*/3, /*rate=*/1.0,
                                  /*micros=*/20'000);

  {
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    // Unbounded query over the stalled medium: would take seconds.
    ASSERT_TRUE(client->Send({1, Query::FindAll(corpus_->substr(0, 3))}).ok());
    // Give the server a moment to start executing, then vanish rudely.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    struct linger abort_on_close = {.l_onoff = 1, .l_linger = 0};
    ASSERT_EQ(setsockopt(client->fd(), SOL_SOCKET, SO_LINGER, &abort_on_close,
                         sizeof(abort_on_close)),
              0);
  }  // ~Client closes the fd; with linger(0) that is an RST

  // The watchdog (100 ms tick) notices and fires the connection token;
  // the next page-miss checkpoint turns the walk into kCancelled.
  WallTimer timer;
  while (server.stats().cancelled == 0 && timer.ElapsedMillis() < 10'000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.stats().cancelled, 1u)
      << "watchdog never cancelled the abandoned query";

  // The server survived the dead socket and still answers.
  rig->backend.DisableRandomStalls();
  Result<Client> fresh = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh->Send({2, Query::Contains("ACGT")}).ok());
  EXPECT_TRUE(fresh->ReceiveResponse().ok());
  server.Stop();
}

// Zero-copy serving (PR 8): two independent servers open the SAME
// artifact file through the mmap path — each with its own mapping —
// and serve concurrent clients on both dialects. Every wire answer
// must match the in-process oracle built from the original index, and
// each server's stats endpoint must report the mmap open mode.
TEST_F(ServeTest, TwoServersOverOneMmapArtifactServeIdenticalAnswers) {
  const std::string path = spine::test::TempPath("serve_mmap.spine");
  ASSERT_TRUE(SaveCompactSpine(*index_, path).ok());
  Result<core::OpenOptions> mmap = core::ParseOpenSpec("mmap");
  ASSERT_TRUE(mmap.ok());

  std::vector<std::unique_ptr<core::Index>> opened;
  std::vector<std::unique_ptr<Server>> servers;
  for (int s = 0; s < 2; ++s) {
    auto index = core::BackendRegistry::Default().Open(path, *mmap);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    EXPECT_EQ((*index)->open_mode(), "mmap");
    servers.push_back(std::make_unique<Server>(**index, TestOptions()));
    opened.push_back(std::move(*index));
    ASSERT_TRUE(servers.back()->Start().ok());
  }

  constexpr int kClientsPerServer = 2;
  constexpr size_t kQueries = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int s = 0; s < 2; ++s) {
    for (int c = 0; c < kClientsPerServer; ++c) {
      clients.emplace_back([&, s, c] {
        Result<Client> client = Client::Connect(
            "127.0.0.1", servers[s]->port(), /*json=*/c % 2 == 1);
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (size_t i = 0; i < kQueries; ++i) {
          const Query query = NthQuery(i, static_cast<size_t>(s * 10 + c));
          const uint64_t id =
              static_cast<uint64_t>(s * 100 + c) * 1000 + i;
          if (!client->Send({id, query}).ok()) {
            ++failures;
            return;
          }
          Result<wire::QueryResponse> response = client->ReceiveResponse();
          if (!response.ok() || response->id != id) {
            ++failures;
            return;
          }
          const QueryResult oracle = adapter_->Execute(query);
          if (!response->result.SameAnswer(oracle)) ++failures;
        }
      });
    }
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  for (auto& server : servers) {
    EXPECT_EQ(server->stats().queries, kClientsPerServer * kQueries);
    const std::string json = server->StatsJson();
    EXPECT_NE(json.find("\"open_mode\":\"mmap\""), std::string::npos) << json;
    server->Stop();
  }
}

// --- lifecycle mutations over the wire (docs/LIFECYCLE.md) ------------------

TEST_F(ServeTest, MutateVerbsDriveADynamicBackendOverBothDialects) {
  spine::test::ScopedTempDir dir;
  shard::DynamicFamily::Options family_options;
  auto family = shard::DynamicFamily::Create(dir.File("fam.spinefam"),
                                             Alphabet::Dna(), family_options);
  ASSERT_TRUE(family.ok()) << family.status().ToString();

  Options options = TestOptions();
  options.mutable_index = family->get();
  Server server(**family, options);
  ASSERT_TRUE(server.Start().ok());

  uint32_t expected_doc_id = 0;
  for (const bool json : {false, true}) {
    SCOPED_TRACE(json ? "json" : "binary");
    Result<Client> client = Client::Connect("127.0.0.1", server.port(), json);
    ASSERT_TRUE(client.ok());

    // Pipelined write barrier: the pre-insert query must answer
    // against the old generation, in request order.
    ASSERT_TRUE(client->Send({1, Query::FindAll("GATTACA")}).ok());
    wire::MutateRequest insert;
    insert.id = 2;
    insert.op = wire::MutateOp::kInsert;
    insert.document = "GATTACAGATTACA";
    ASSERT_TRUE(client->SendMutate(insert).ok());
    ASSERT_TRUE(client->Send({3, Query::FindAll("GATTACA")}).ok());

    Result<wire::QueryResponse> before = client->ReceiveResponse();
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    EXPECT_TRUE(before->result.hits.empty());

    Result<wire::MutateResponse> inserted = client->ReceiveMutateResponse();
    ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
    EXPECT_EQ(inserted->id, 2u);
    EXPECT_EQ(inserted->op, wire::MutateOp::kInsert);
    EXPECT_EQ(inserted->status, StatusCode::kOk);
    EXPECT_EQ(inserted->doc_id, expected_doc_id);
    EXPECT_GT(inserted->generation, 0u);

    Result<wire::QueryResponse> after = client->ReceiveResponse();
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(after->result.hits.size(), 2u);

    // Compact, then delete; the collection ends each dialect round
    // empty again.
    wire::MutateRequest compact;
    compact.id = 4;
    compact.op = wire::MutateOp::kCompact;
    ASSERT_TRUE(client->SendMutate(compact).ok());
    Result<wire::MutateResponse> compacted = client->ReceiveMutateResponse();
    ASSERT_TRUE(compacted.ok());
    EXPECT_EQ(compacted->status, StatusCode::kOk);

    wire::MutateRequest del;
    del.id = 5;
    del.op = wire::MutateOp::kDelete;
    del.doc_id = expected_doc_id;
    ASSERT_TRUE(client->SendMutate(del).ok());
    Result<wire::MutateResponse> deleted = client->ReceiveMutateResponse();
    ASSERT_TRUE(deleted.ok());
    EXPECT_EQ(deleted->status, StatusCode::kOk);

    // Deleting it again is a per-request verdict, not a connection
    // error: the same connection keeps serving queries afterwards.
    del.id = 6;
    ASSERT_TRUE(client->SendMutate(del).ok());
    Result<wire::MutateResponse> missing = client->ReceiveMutateResponse();
    ASSERT_TRUE(missing.ok());
    EXPECT_EQ(missing->status, StatusCode::kNotFound);
    EXPECT_FALSE(missing->error.empty());

    ASSERT_TRUE(client->Send({7, Query::Contains("GATTACA")}).ok());
    Result<wire::QueryResponse> gone = client->ReceiveResponse();
    ASSERT_TRUE(gone.ok());
    EXPECT_FALSE(gone->result.found);

    ++expected_doc_id;
  }

  // The stats document reports the mutable backend and its counters.
  const std::string stats = server.StatsJson();
  for (const char* key :
       {"\"mutable\":true", "\"mutations\"", "\"generation\"",
        "\"live_documents\""}) {
    EXPECT_NE(stats.find(key), std::string::npos) << key << " in " << stats;
  }
  server.Stop();
}

TEST_F(ServeTest, ReadOnlyBackendRefusesMutationsAndKeepsServing) {
  Server server(*adapter_, TestOptions());  // no mutable_index
  ASSERT_TRUE(server.Start().ok());
  for (const bool json : {false, true}) {
    SCOPED_TRACE(json ? "json" : "binary");
    Result<Client> client = Client::Connect("127.0.0.1", server.port(), json);
    ASSERT_TRUE(client.ok());
    wire::MutateRequest insert;
    insert.id = 1;
    insert.op = wire::MutateOp::kInsert;
    insert.document = "ACGT";
    ASSERT_TRUE(client->SendMutate(insert).ok());
    Result<wire::MutateResponse> response = client->ReceiveMutateResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, StatusCode::kInvalidArgument);
    EXPECT_NE(response->error.find("read-only"), std::string::npos);
    // The refusal is per-request: queries still flow on this connection.
    ASSERT_TRUE(client->Send({2, Query::Contains("ACGT")}).ok());
    EXPECT_TRUE(client->ReceiveResponse().ok());
  }
  const std::string stats = server.StatsJson();
  EXPECT_NE(stats.find("\"mutable\":false"), std::string::npos) << stats;
  server.Stop();
}

TEST_F(ServeTest, StatsJsonCarriesTheDeadlineCountersAndConfig) {
  Options options = TestOptions();
  options.default_deadline_ms = 123;
  options.max_deadline_ms = 456;
  Server server(*adapter_, options);
  ASSERT_TRUE(server.Start().ok());
  const std::string json = server.StatsJson();
  for (const char* key :
       {"\"deadline_exceeded\"", "\"cancelled\"", "\"idle_closed\"",
        "\"default_deadline_ms\":123", "\"max_deadline_ms\":456"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  server.Stop();
}

}  // namespace
}  // namespace spine::serve
