// Tests for the DAWG / suffix automaton (the paper's Section 7
// horizontal-compaction relative).

#include "dawg/suffix_automaton.h"

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compact/compact_spine.h"
#include "naive/naive_index.h"
#include "seq/generator.h"

namespace spine {
namespace {

TEST(SuffixAutomatonTest, EmptyAndBasics) {
  SuffixAutomaton dawg(Alphabet::Dna());
  EXPECT_EQ(dawg.size(), 0u);
  EXPECT_TRUE(dawg.Contains(""));
  EXPECT_FALSE(dawg.Contains("A"));
  EXPECT_FALSE(dawg.Append('?').ok());
  ASSERT_TRUE(dawg.AppendString("ACCACAACA").ok());
  EXPECT_TRUE(dawg.Contains("CCAC"));
  EXPECT_TRUE(dawg.Contains("ACCACAACA"));
  EXPECT_FALSE(dawg.Contains("ACCAA"));
  EXPECT_TRUE(dawg.Validate().ok());
}

TEST(SuffixAutomatonTest, FindAllAndCounts) {
  SuffixAutomaton dawg(Alphabet::Dna());
  ASSERT_TRUE(dawg.AppendString("ACACACA").ok());
  EXPECT_EQ(dawg.FindAll("ACA"), (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_EQ(dawg.CountOccurrences("ACA"), 3u);
  EXPECT_EQ(dawg.CountOccurrences("CC"), 0u);
}

TEST(SuffixAutomatonTest, StateCountBounded) {
  Rng rng(64);
  const char* letters = "ACGT";
  std::string s;
  for (int i = 0; i < 3000; ++i) s.push_back(letters[rng.Below(4)]);
  SuffixAutomaton dawg(Alphabet::Dna());
  ASSERT_TRUE(dawg.AppendString(s).ok());
  EXPECT_LE(dawg.state_count(), 2 * s.size() - 1);
  EXPECT_LE(dawg.transition_count(), 3 * s.size() - 4);
  EXPECT_TRUE(dawg.Validate().ok());
}

TEST(SuffixAutomatonTest, OracleSweep) {
  Rng rng(4096);
  const char* letters = "ACGT";
  for (int round = 0; round < 60; ++round) {
    uint32_t sigma = 2 + static_cast<uint32_t>(rng.Below(3));
    uint32_t n = 4 + static_cast<uint32_t>(rng.Below(120));
    std::string s;
    for (uint32_t i = 0; i < n; ++i) s.push_back(letters[rng.Below(sigma)]);
    SuffixAutomaton dawg(Alphabet::Dna());
    ASSERT_TRUE(dawg.AppendString(s).ok());
    ASSERT_TRUE(dawg.Validate().ok()) << s;
    for (int trial = 0; trial < 40; ++trial) {
      std::string pattern;
      if (trial % 2 == 0) {
        uint32_t start = static_cast<uint32_t>(rng.Below(n));
        pattern = s.substr(start, 1 + rng.Below(10));
      } else {
        for (uint32_t i = 0; i < 1 + rng.Below(8); ++i) {
          pattern.push_back(letters[rng.Below(sigma)]);
        }
      }
      ASSERT_EQ(dawg.FindAll(pattern), naive::FindAllOccurrences(s, pattern))
          << "s=" << s << " pattern=" << pattern;
    }
  }
}

TEST(SuffixAutomatonTest, AgreesWithSpineOnlineAtEveryPrefix) {
  const std::string s = "ACCACAACAGGTTGCATCAACCACA";
  SuffixAutomaton dawg(Alphabet::Dna());
  CompactSpineIndex spine(Alphabet::Dna());
  for (size_t i = 0; i < s.size(); ++i) {
    ASSERT_TRUE(dawg.Append(s[i]).ok());
    ASSERT_TRUE(spine.Append(s[i]).ok());
    for (size_t start = 0; start <= i; start += 2) {
      std::string pattern = s.substr(start, 3);
      pattern.resize(std::min<size_t>(pattern.size(), i + 1 - start));
      if (pattern.empty()) continue;
      ASSERT_EQ(dawg.FindAll(pattern), spine.FindAll(pattern))
          << "prefix " << i + 1 << " pattern " << pattern;
    }
  }
}

TEST(SuffixAutomatonTest, SpaceIsInTheThirtyBytesClass) {
  seq::GeneratorOptions gen;
  gen.length = 100'000;
  gen.seed = 12;
  gen.repeat_fraction = 0.05;
  gen.mean_repeat_len = 500;
  std::string s = seq::GenerateSequence(Alphabet::Dna(), gen);
  SuffixAutomaton dawg(Alphabet::Dna());
  ASSERT_TRUE(dawg.AppendString(s).ok());
  double bpc =
      static_cast<double>(dawg.MemoryBytes()) / static_cast<double>(s.size());
  // The paper quotes ~34 B/char for DNA DAWGs ([9]'s accounting); our
  // logical layout lands in the same class, well above SPINE's 12.
  EXPECT_GT(bpc, 20.0) << bpc;
  EXPECT_LT(bpc, 45.0) << bpc;
}

}  // namespace
}  // namespace spine
