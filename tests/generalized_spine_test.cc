// Tests for the multi-string (generalized) SPINE index.

#include "core/generalized_spine.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "naive/naive_index.h"

namespace spine {
namespace {

using Hit = GeneralizedSpineIndex::Hit;

TEST(GeneralizedSpineTest, EmptyIndex) {
  GeneralizedSpineIndex index(Alphabet::Dna());
  EXPECT_EQ(index.string_count(), 0u);
  EXPECT_FALSE(index.Contains("A"));
  EXPECT_TRUE(index.FindAll("A").empty());
}

TEST(GeneralizedSpineTest, HitsMapToStringAndOffset) {
  GeneralizedSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AddString("ACGTACGT").ok());
  ASSERT_TRUE(index.AddString("TTACGTT").ok());
  ASSERT_TRUE(index.AddString("GGGG").ok());
  ASSERT_EQ(index.string_count(), 3u);
  EXPECT_EQ(index.StringLength(0), 8u);
  EXPECT_EQ(index.StringLength(1), 7u);
  EXPECT_EQ(index.StringLength(2), 4u);

  EXPECT_EQ(index.FindAll("ACGT"),
            (std::vector<Hit>{{0, 0}, {0, 4}, {1, 2}}));
  EXPECT_EQ(index.FindAll("GGGG"), (std::vector<Hit>{{2, 0}}));
  EXPECT_TRUE(index.Contains("TTA"));
  EXPECT_FALSE(index.Contains("AAAA"));
}

TEST(GeneralizedSpineTest, MatchesNeverCrossStringBoundaries) {
  GeneralizedSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AddString("AAAC").ok());
  ASSERT_TRUE(index.AddString("CGGG").ok());
  // "ACCG" spans the concatenation boundary but is not a real substring
  // of either string.
  EXPECT_FALSE(index.Contains("ACCG"));
  EXPECT_FALSE(index.Contains("CCG"));
  EXPECT_TRUE(index.Contains("AC"));   // inside string 0
  EXPECT_TRUE(index.Contains("CG"));   // inside string 1
}

TEST(GeneralizedSpineTest, RejectsBadInput) {
  GeneralizedSpineIndex index(Alphabet::Dna());
  EXPECT_FALSE(index.AddString("ACGX").ok());
  EXPECT_EQ(index.string_count(), 0u);
  std::string with_sep = "AC";
  with_sep.push_back(GeneralizedSpineIndex::kSeparator);
  with_sep += "GT";
  EXPECT_FALSE(index.AddString(with_sep).ok());
  // Queries containing the separator match nothing.
  ASSERT_TRUE(index.AddString("ACGT").ok());
  EXPECT_FALSE(index.Contains(std::string(1, GeneralizedSpineIndex::kSeparator)));
}

TEST(GeneralizedSpineTest, DuplicateStringsGetDistinctIds) {
  GeneralizedSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AddString("ACG").ok());
  ASSERT_TRUE(index.AddString("ACG").ok());
  EXPECT_EQ(index.FindAll("ACG"), (std::vector<Hit>{{0, 0}, {1, 0}}));
}

TEST(GeneralizedSpineTest, RandomizedAgainstPerStringOracle) {
  Rng rng(555);
  const char* letters = "ACGT";
  for (int round = 0; round < 25; ++round) {
    GeneralizedSpineIndex index(Alphabet::Dna());
    std::vector<std::string> strings;
    uint32_t count = 2 + static_cast<uint32_t>(rng.Below(5));
    for (uint32_t k = 0; k < count; ++k) {
      std::string s;
      uint32_t len = 4 + static_cast<uint32_t>(rng.Below(60));
      for (uint32_t i = 0; i < len; ++i) {
        s.push_back(letters[rng.Below(4)]);
      }
      strings.push_back(s);
      ASSERT_TRUE(index.AddString(s).ok());
    }
    for (int trial = 0; trial < 40; ++trial) {
      std::string pattern;
      for (uint32_t i = 0; i < 1 + rng.Below(6); ++i) {
        pattern.push_back(letters[rng.Below(4)]);
      }
      std::vector<Hit> expected;
      for (uint32_t id = 0; id < strings.size(); ++id) {
        for (uint32_t pos : naive::FindAllOccurrences(strings[id], pattern)) {
          expected.push_back({id, pos});
        }
      }
      ASSERT_EQ(index.FindAll(pattern), expected) << "pattern " << pattern;
    }
  }
}

TEST(GeneralizedSpineTest, MatchAgainstCollection) {
  GeneralizedSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AddString("ACGTACGTCC").ok());
  ASSERT_TRUE(index.AddString("GGACGTGG").ok());
  auto matches = index.MatchAgainst("TTACGTACGTT", 4);
  ASSERT_FALSE(matches.empty());
  // The dominant match "ACGTACG T..." — query[2..10) = "ACGTACGT"
  // occurs in string 0 at 0; its sub-match "ACGT" occurs in both.
  bool found_long = false;
  for (const auto& match : matches) {
    std::string sub = std::string("TTACGTACGTT")
                          .substr(match.query_pos, match.length);
    for (const auto& hit : match.hits) {
      ASSERT_LT(hit.string_id, 2u);
      // Verify the hit against the original strings.
      const std::string strings[2] = {"ACGTACGTCC", "GGACGTGG"};
      ASSERT_EQ(strings[hit.string_id].substr(hit.offset, match.length), sub);
    }
    if (match.length == 8) found_long = true;
  }
  EXPECT_TRUE(found_long);
  // Separator-containing queries match nothing.
  std::string bad = "AC";
  bad.push_back(GeneralizedSpineIndex::kSeparator);
  EXPECT_TRUE(index.MatchAgainst(bad, 1).empty());
  EXPECT_TRUE(index.MatchAgainst("ACGT", 0).empty());
}

TEST(GeneralizedSpineTest, MatchAgainstNeverCrossesBoundaries) {
  GeneralizedSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AddString("AAAA").ok());
  ASSERT_TRUE(index.AddString("CCCC").ok());
  // "AACC" spans the two strings in the concatenation; the separator
  // must prevent any match longer than the in-string runs.
  auto matches = index.MatchAgainst("AACC", 3);
  for (const auto& match : matches) {
    EXPECT_LE(match.length, 2u);
  }
  auto runs = index.MatchAgainst("AAACCC", 3);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].length, 3u);  // "AAA" in string 0
  EXPECT_EQ(runs[1].length, 3u);  // "CCC" in string 1
}

TEST(GeneralizedSpineTest, ProteinAlphabet) {
  GeneralizedSpineIndex index(Alphabet::Protein());
  ASSERT_TRUE(index.AddString("MKVLA").ok());
  ASSERT_TRUE(index.AddString("GGMKV").ok());
  EXPECT_EQ(index.FindAll("MKV"), (std::vector<Hit>{{0, 0}, {1, 2}}));
}

}  // namespace
}  // namespace spine
