// Tests for the concurrent batch query engine: the work-stealing pool,
// the LRU result cache, determinism across thread counts, and agreement
// across backends consumed through the core::Index interface.

#include "engine/query_engine.h"

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "compact/compact_spine.h"
#include "core/adapters.h"
#include "core/query.h"
#include "core/spine_index.h"
#include "engine/query_cache.h"
#include "engine/thread_pool.h"
#include "seq/generator.h"
#include "storage/disk_spine.h"
#include "test_util.h"

namespace spine::engine {
namespace {

using spine::test::TestCorpus;

// A mixed batch of every query kind: patterns sliced from the corpus
// (hits), shuffled slices (mostly misses), and longer match queries.
std::vector<Query> MixedBatch(const std::string& corpus, size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t len = 8 + (i * 7) % 24;
    const size_t offset = (i * 131) % (corpus.size() - 256);
    std::string pattern = corpus.substr(offset, len);
    switch (i % 5) {
      case 0:
        queries.push_back(Query::FindAll(pattern));
        break;
      case 1:
        queries.push_back(Query::Contains(pattern));
        break;
      case 2:
        // Perturb to exercise the miss paths.
        pattern[len / 2] = pattern[len / 2] == 'A' ? 'C' : 'A';
        queries.push_back(Query::FindAll(pattern));
        break;
      case 3:
        queries.push_back(
            Query::MaximalMatches(corpus.substr(offset, 96), 12));
        break;
      default:
        queries.push_back(Query::MatchingStats(corpus.substr(offset, 64)));
        break;
    }
  }
  return queries;
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WorkerIndexIsStableInsideTasks) {
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&bad] {
      int w = ThreadPool::worker_index();
      if (w < 0 || w >= 3) bad.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(ThreadPool::worker_index(), -1);  // not a pool thread
}

TEST(ThreadPoolTest, StealsFromABusyWorkersDeque) {
  ThreadPool pool(2);
  // Park both workers inside gate tasks, then queue work: the shorts
  // round-robin onto both deques. Releasing only one gate leaves one
  // worker parked, so the free worker can finish the batch only by
  // stealing from the parked worker's deque.
  std::promise<void> release_a, release_b;
  std::shared_future<void> gate_a = release_a.get_future().share();
  std::shared_future<void> gate_b = release_b.get_future().share();
  std::atomic<int> parked{0};
  pool.Submit([&] {
    parked.fetch_add(1);
    gate_a.wait();
  });
  pool.Submit([&] {
    parked.fetch_add(1);
    gate_b.wait();
  });
  while (parked.load() < 2) std::this_thread::yield();

  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  release_a.set_value();
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_GT(pool.steal_count(), 0u);
  release_b.set_value();
  pool.Wait();
}

TEST(QueryCacheTest, HitReturnsStoredAnswer) {
  QueryCache cache(1 << 20);
  Query q = Query::FindAll("ACGT");
  std::string key = QueryCache::Key(7, q);
  EXPECT_FALSE(cache.Get(key).has_value());
  QueryResult r;
  r.found = true;
  r.hits = {{3, 4, 0}, {9, 4, 0}};
  cache.Put(key, r);
  std::optional<QueryResult> got = cache.Get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->SameAnswer(r));
  QueryCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
}

TEST(QueryCacheTest, KeySeparatesBackendsAndKinds) {
  Query findall = Query::FindAll("ACGT");
  Query contains = Query::Contains("ACGT");
  EXPECT_NE(QueryCache::Key(1, findall), QueryCache::Key(2, findall));
  EXPECT_NE(QueryCache::Key(1, findall), QueryCache::Key(1, contains));
  EXPECT_NE(QueryCache::Key(1, Query::MaximalMatches("ACGT", 5)),
            QueryCache::Key(1, Query::MaximalMatches("ACGT", 6)));
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsedAndStaysCorrect) {
  QueryResult small;
  small.found = true;
  small.hits = {{1, 2, 0}};
  const std::string a = QueryCache::Key(1, Query::FindAll("AAAA"));
  const std::string b = QueryCache::Key(1, Query::FindAll("BBBB"));
  const std::string c = QueryCache::Key(1, Query::FindAll("CCCC"));
  const uint64_t entry_bytes = 96 + a.size() + sizeof(Hit);
  // Room for exactly two entries.
  QueryCache cache(2 * entry_bytes);

  cache.Put(a, small);
  cache.Put(b, small);
  EXPECT_EQ(cache.entry_count(), 2u);
  // Touch a so b becomes the eviction victim.
  EXPECT_TRUE(cache.Get(a).has_value());
  cache.Put(c, small);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_FALSE(cache.Get(b).has_value());  // evicted
  std::optional<QueryResult> got_a = cache.Get(a);
  std::optional<QueryResult> got_c = cache.Get(c);
  ASSERT_TRUE(got_a.has_value());
  ASSERT_TRUE(got_c.has_value());
  EXPECT_TRUE(got_a->SameAnswer(small));
  EXPECT_TRUE(got_c->SameAnswer(small));
}

TEST(QueryCacheTest, ZeroCapacityDisables) {
  QueryCache cache(0);
  EXPECT_FALSE(cache.enabled());
  QueryResult r;
  cache.Put("k", r);
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(QueryEngineTest, MatchesSequentialExecutionAtAnyThreadCount) {
  const std::string corpus = TestCorpus(30'000);
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(corpus).ok());
  core::SpineIndexAdapter adapter(index);
  const std::vector<Query> queries = MixedBatch(corpus, 200);

  std::vector<QueryResult> reference;
  reference.reserve(queries.size());
  for (const Query& q : queries) reference.push_back(ExecuteQuery(index, q));

  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    QueryEngine engine({.threads = threads, .cache_bytes = 0});
    BatchStats stats;
    std::vector<QueryResult> results =
        engine.ExecuteBatch(adapter, queries, &stats);
    ASSERT_EQ(results.size(), reference.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(results[i].SameAnswer(reference[i]))
          << "thread count " << threads << ", query " << i;
    }
    EXPECT_EQ(stats.queries, queries.size());
    EXPECT_EQ(stats.executed, queries.size());
    EXPECT_EQ(stats.cache_hits, 0u);
    EXPECT_EQ(stats.per_thread.size(), threads);
    // Per-thread counters must add up to the batch total.
    SearchStats sum;
    for (const SearchStats& s : stats.per_thread) sum.Add(s);
    EXPECT_EQ(sum.nodes_checked, stats.search.nodes_checked);
  }
}

TEST(QueryEngineTest, SecondIdenticalBatchHitsTheCache) {
  const std::string corpus = TestCorpus(10'000);
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(corpus).ok());
  core::SpineIndexAdapter adapter(index);
  const std::vector<Query> queries = MixedBatch(corpus, 100);

  QueryEngine engine({.threads = 4, .cache_bytes = 8 << 20});
  BatchStats first_stats, second_stats;
  std::vector<QueryResult> first =
      engine.ExecuteBatch(adapter, queries, &first_stats);
  std::vector<QueryResult> second =
      engine.ExecuteBatch(adapter, queries, &second_stats);
  EXPECT_EQ(second_stats.cache_hits, queries.size());
  EXPECT_EQ(second_stats.executed, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(first[i].SameAnswer(second[i])) << "query " << i;
  }
  // A second adapter over the same backend is a distinct Index with its
  // own cache id: it must not see the first adapter's cached answers.
  core::SpineIndexAdapter other(index);
  EXPECT_NE(other.cache_id(), adapter.cache_id());
  BatchStats other_stats;
  engine.ExecuteBatch(other, queries, &other_stats);
  EXPECT_EQ(other_stats.cache_hits, 0u);
}

TEST(QueryEngineTest, CacheCorrectAfterEvictionPressure) {
  const std::string corpus = TestCorpus(10'000);
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(corpus).ok());
  const std::vector<Query> queries = MixedBatch(corpus, 300);

  std::vector<QueryResult> reference;
  for (const Query& q : queries) reference.push_back(ExecuteQuery(index, q));

  // A cache far too small for the batch: constant eviction churn.
  core::SpineIndexAdapter adapter(index);
  QueryEngine engine({.threads = 4, .cache_bytes = 4096});
  for (int round = 0; round < 3; ++round) {
    std::vector<QueryResult> results = engine.ExecuteBatch(adapter, queries);
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(results[i].SameAnswer(reference[i]))
          << "round " << round << ", query " << i;
    }
  }
  EXPECT_GT(engine.cache().counters().evictions, 0u);
}

TEST(QueryEngineTest, AllThreeBackendsAgreeOnTheSameCorpus) {
  const std::string corpus = TestCorpus(20'000);
  const std::vector<Query> queries = MixedBatch(corpus, 150);

  SpineIndex reference(Alphabet::Dna());
  ASSERT_TRUE(reference.AppendString(corpus).ok());
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(corpus).ok());
  const std::string disk_path = spine::test::TempPath("engine_disk.spine");
  Result<std::unique_ptr<storage::DiskSpine>> disk = storage::DiskSpine::Create(
      Alphabet::Dna(), disk_path, storage::DiskSpine::Options{});
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_TRUE((*disk)->AppendString(corpus).ok());

  core::SpineIndexAdapter reference_adapter(reference);
  core::CompactSpineAdapter compact_adapter(compact);
  core::DiskSpineAdapter disk_adapter(**disk);
  // DiskSpine reads mutate the shared buffer pool; its adapter reports
  // concurrent_reads = false (the runtime replacement for the old
  // kConcurrentSafeReads trait), the engine serializes it, and the
  // answers still agree.
  EXPECT_FALSE(disk_adapter.capabilities().concurrent_reads);
  EXPECT_TRUE(compact_adapter.capabilities().concurrent_reads);

  QueryEngine engine({.threads = 4, .cache_bytes = 0});
  std::vector<QueryResult> from_reference =
      engine.ExecuteBatch(reference_adapter, queries);
  std::vector<QueryResult> from_compact =
      engine.ExecuteBatch(compact_adapter, queries);
  std::vector<QueryResult> from_disk =
      engine.ExecuteBatch(disk_adapter, queries);

  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(from_reference[i].SameAnswer(from_compact[i]))
        << "compact disagrees on query " << i;
    EXPECT_TRUE(from_reference[i].SameAnswer(from_disk[i]))
        << "disk disagrees on query " << i;
  }
}

// Tracing is strictly observational: the same batch with tracing on
// and off returns exactly equal results (payload AND work counters),
// and the traces themselves carry the per-query spans/notes.
TEST(QueryEngineTest, TracingDoesNotChangeResults) {
  const std::string corpus = TestCorpus(15'000);
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(corpus).ok());
  const std::vector<Query> queries = MixedBatch(corpus, 120);

  core::CompactSpineAdapter adapter(index);
  QueryEngine plain({.threads = 4, .cache_bytes = 0, .tracing = false});
  QueryEngine traced({.threads = 4, .cache_bytes = 0, .tracing = true});
  BatchStats plain_stats, traced_stats;
  std::vector<QueryResult> off =
      plain.ExecuteBatch(adapter, queries, &plain_stats);
  std::vector<QueryResult> on =
      traced.ExecuteBatch(adapter, queries, &traced_stats);

  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    EXPECT_TRUE(off[i].SameAnswer(on[i])) << "query " << i;
    // Exact equality including the work counters: tracing observed the
    // same execution, it did not alter it.
    EXPECT_EQ(off[i].stats.nodes_checked, on[i].stats.nodes_checked);
    EXPECT_EQ(off[i].stats.link_traversals, on[i].stats.link_traversals);
    EXPECT_EQ(off[i].stats.chain_hops, on[i].stats.chain_hops);
  }
  EXPECT_EQ(plain_stats.search.nodes_checked,
            traced_stats.search.nodes_checked);

  EXPECT_TRUE(plain_stats.traces.empty());
#if defined(SPINE_OBS_DISABLED)
  // Capture sites compiled out: tracing silently collects nothing.
  EXPECT_TRUE(traced_stats.traces.empty());
#else
  ASSERT_EQ(traced_stats.traces.size(), queries.size());
  for (size_t i = 0; i < traced_stats.traces.size(); ++i) {
    const obs::TraceContext& trace = traced_stats.traces[i];
    EXPECT_GE(trace.SpanMicros("exec_us"), 0.0) << "query " << i;
    EXPECT_GE(trace.SpanMicros("queue_wait_us"), 0.0) << "query " << i;
    EXPECT_EQ(trace.NoteValue("cache_hit", 99), 0u);
    // The trace's work notes equal the result's own counters.
    EXPECT_EQ(trace.NoteValue("nodes_checked"), on[i].stats.nodes_checked);
    EXPECT_EQ(trace.NoteValue("found", 99), on[i].found ? 1u : 0u);
  }
#endif
}

// Tracing composes with the result cache: a cached answer's trace notes
// the hit instead of carrying an exec span's work notes.
TEST(QueryEngineTest, TracedCacheHitsAreMarked) {
  const std::string corpus = TestCorpus(8'000);
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(corpus).ok());
  const std::vector<Query> queries = MixedBatch(corpus, 40);

  core::CompactSpineAdapter adapter(index);
  QueryEngine engine(
      {.threads = 2, .cache_bytes = 8 << 20, .tracing = true});
  BatchStats first_stats, second_stats;
  std::vector<QueryResult> first =
      engine.ExecuteBatch(adapter, queries, &first_stats);
  std::vector<QueryResult> second =
      engine.ExecuteBatch(adapter, queries, &second_stats);
  ASSERT_EQ(second_stats.cache_hits, queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(first[i].SameAnswer(second[i])) << "query " << i;
  }
#if !defined(SPINE_OBS_DISABLED)
  ASSERT_EQ(second_stats.traces.size(), queries.size());
  for (const obs::TraceContext& trace : second_stats.traces) {
    EXPECT_EQ(trace.NoteValue("cache_hit", 99), 1u);
  }
#endif
}

TEST(QueryEngineTest, EmptyBatchAndEmptyPatterns) {
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("ACGTACGT").ok());
  core::SpineIndexAdapter adapter(index);
  QueryEngine engine({.threads = 2, .cache_bytes = 1 << 16});
  BatchStats stats;
  EXPECT_TRUE(engine.ExecuteBatch(adapter, {}, &stats).empty());
  EXPECT_EQ(stats.queries, 0u);

  std::vector<Query> edge = {Query::FindAll(""), Query::Contains(""),
                             Query::MatchingStats("")};
  std::vector<QueryResult> results = engine.ExecuteBatch(adapter, edge);
  EXPECT_FALSE(results[0].found);       // empty pattern: no occurrences
  EXPECT_TRUE(results[1].found);        // empty pattern is contained
  EXPECT_TRUE(results[2].matching_stats.empty());
}

// The multi-index overload fans one batch across several indexes at
// once: per-index result rows in input order, per-index stats, and
// answers identical to running each index alone.
TEST(QueryEngineTest, MultiIndexOverloadAnswersEveryIndex) {
  const std::string corpus = TestCorpus(12'000);
  SpineIndex reference(Alphabet::Dna());
  ASSERT_TRUE(reference.AppendString(corpus).ok());
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(corpus).ok());
  const std::vector<Query> queries = MixedBatch(corpus, 80);

  core::SpineIndexAdapter reference_adapter(reference);
  core::CompactSpineAdapter compact_adapter(compact);
  QueryEngine engine({.threads = 4, .cache_bytes = 0});
  std::vector<BatchStats> stats;
  std::vector<std::vector<QueryResult>> results = engine.ExecuteBatch(
      {&reference_adapter, &compact_adapter}, queries, &stats);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(stats.size(), 2u);
  std::vector<QueryResult> solo = engine.ExecuteBatch(compact_adapter, queries);
  for (size_t j = 0; j < results.size(); ++j) {
    ASSERT_EQ(results[j].size(), queries.size()) << "index " << j;
    EXPECT_EQ(stats[j].queries, queries.size()) << "index " << j;
    EXPECT_EQ(stats[j].failed, 0u) << "index " << j;
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(results[j][i].SameAnswer(solo[i]))
          << "index " << j << ", query " << i;
    }
  }
}

// --- deadlines and cancellation (PR 7) --------------------------------------

TEST(QueryEngineTest, ExpiredBatchTokenFailsEveryQueryBeforeDispatch) {
  const std::string corpus = TestCorpus(10'000);
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(corpus).ok());
  core::SpineIndexAdapter adapter(index);
  const std::vector<Query> queries = MixedBatch(corpus, 40);

  QueryEngine engine({.threads = 4, .cache_bytes = 8 << 20});
  CancelToken expired(Deadline::AfterMs(0));  // fired before the batch starts
  BatchStats stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(adapter, queries, &stats, &expired);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status_code, StatusCode::kDeadlineExceeded)
        << "query " << i;
    EXPECT_NE(results[i].error.find("before dispatch"), std::string::npos)
        << results[i].error;
  }
  EXPECT_EQ(stats.deadline_exceeded, queries.size());
  EXPECT_EQ(stats.failed, queries.size());
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);
  // Expired verdicts must not poison the cache: a clean rerun of the
  // same batch executes fresh and succeeds.
  BatchStats rerun;
  std::vector<QueryResult> fresh =
      engine.ExecuteBatch(adapter, queries, &rerun);
  EXPECT_EQ(rerun.cache_hits, 0u);
  EXPECT_EQ(rerun.failed, 0u);
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_TRUE(fresh[i].ok()) << "query " << i << ": " << fresh[i].error;
  }
}

TEST(QueryEngineTest, CancelledBatchTokenReportsCancelledNotDeadline) {
  const std::string corpus = TestCorpus(5'000);
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(corpus).ok());
  core::SpineIndexAdapter adapter(index);
  const std::vector<Query> queries = MixedBatch(corpus, 20);

  QueryEngine engine({.threads = 2, .cache_bytes = 0});
  CancelToken token;
  token.Cancel();  // the "client hung up before we started" shape
  BatchStats stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(adapter, queries, &stats, &token);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status_code, StatusCode::kCancelled) << "query " << i;
  }
  EXPECT_EQ(stats.cancelled, queries.size());
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.failed, queries.size());
}

TEST(QueryEngineTest, GenerousPerQueryDeadlinesDoNotChangeAnswers) {
  const std::string corpus = TestCorpus(10'000);
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(corpus).ok());
  core::SpineIndexAdapter adapter(index);
  std::vector<Query> queries = MixedBatch(corpus, 60);
  std::vector<QueryResult> reference;
  for (const Query& q : queries) reference.push_back(ExecuteQuery(index, q));
  // A minute-scale budget on every query: enforcement machinery runs
  // (tokens, checkpoints) but nothing fires.
  for (Query& q : queries) q.deadline_ms = 60'000;

  QueryEngine engine({.threads = 4, .cache_bytes = 0});
  BatchStats stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(adapter, queries, &stats);
  ASSERT_EQ(results.size(), reference.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].SameAnswer(reference[i])) << "query " << i;
  }
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
}

TEST(QueryCacheTest, KeyIgnoresDeadline) {
  // Deliberate: the same pattern with a different budget is the same
  // answer, so a budget change must not fragment the cache.
  Query a = Query::FindAll("ACGT");
  Query b = Query::FindAll("ACGT");
  b.deadline_ms = 500;
  EXPECT_EQ(QueryCache::Key(1, a), QueryCache::Key(1, b));
}

}  // namespace
}  // namespace spine::engine
