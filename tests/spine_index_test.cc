// Unit and property tests for the reference SPINE index: construction
// labels (validated against the paper's worked example, Figure 3),
// search semantics (validated against the brute-force oracle) and
// structural invariants.

#include "core/spine_index.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "naive/naive_index.h"
#include "test_util.h"

namespace spine {
namespace {

SpineIndex BuildDna(std::string_view s) {
  SpineIndex index(Alphabet::Dna());
  Status status = index.AppendString(s);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return index;
}

// ---------------------------------------------------------------------
// The paper's worked example: Figure 3 for the string "aaccacaaca"
// (rendered here over the DNA alphabet as lowercase a/c).
// ---------------------------------------------------------------------

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : index_(BuildDna("aaccacaaca")) {}
  SpineIndex index_;
};

TEST_F(PaperExampleTest, BackboneHasOneNodePerCharacter) {
  EXPECT_EQ(index_.size(), 10u);
  EXPECT_EQ(index_.ReconstructString(), "AACCACAACA");
}

TEST_F(PaperExampleTest, RibFromNode3HasPathlengthThreshold1) {
  // "the rib from Node 3 has a PT of 1" (Section 2.1).
  const SpineIndex::Rib* rib =
      index_.FindRib(3, index_.alphabet().Encode('a'));
  ASSERT_NE(rib, nullptr);
  EXPECT_EQ(rib->pt, 1u);
  EXPECT_EQ(rib->dest, 5u);
}

TEST_F(PaperExampleTest, ExtribFromNode5ToNode7HasPt2Prt1) {
  // "the extrib from Node 5 to Node 7 has a PRT of 1 and PT of 2".
  const SpineIndex::Extrib* e = index_.FindExtrib(5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->dest, 7u);
  EXPECT_EQ(e->pt, 2u);
  EXPECT_EQ(e->prt, 1u);
}

TEST_F(PaperExampleTest, LinkFromNode8ToNode2HasLel2) {
  // "the link from Node 8 to Node 2 has an LEL of 2".
  EXPECT_EQ(index_.LinkDest(8), 2u);
  EXPECT_EQ(index_.LinkLel(8), 2u);
}

TEST_F(PaperExampleTest, SecondExtribChainsFromNode7) {
  // Appending the final 'a' extends the same rib again: the chain
  // grows from the first extrib's destination (Section 2.6).
  const SpineIndex::Extrib* e = index_.FindExtrib(7);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->dest, 10u);
  EXPECT_EQ(e->pt, 3u);
  EXPECT_EQ(e->prt, 1u);
}

TEST_F(PaperExampleTest, AccaaIsRejectedByThresholds) {
  // Section 2.1/4: "accaa" looks like a path but the PT labels forbid it.
  EXPECT_TRUE(index_.Contains("acca"));
  EXPECT_FALSE(index_.Contains("accaa"));
}

TEST_F(PaperExampleTest, SearchExampleForAc) {
  // Section 4: query "ac" -> occurrences end at nodes 3, 6, 9.
  auto first = index_.FindFirstEnd("ac");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 3u);
  EXPECT_EQ(index_.FindAll("ac"), (std::vector<uint32_t>{1, 4, 7}));
}

TEST_F(PaperExampleTest, ValidatePasses) {
  Status status = index_.Validate();
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// ---------------------------------------------------------------------
// Basic API behaviour.
// ---------------------------------------------------------------------

TEST(SpineIndexTest, EmptyIndex) {
  SpineIndex index(Alphabet::Dna());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.Contains("a"));
  EXPECT_TRUE(index.FindAll("a").empty());
  EXPECT_TRUE(index.Validate().ok());
  // The empty pattern terminates at the root.
  auto end = index.FindFirstEnd("");
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, kRootNode);
}

TEST(SpineIndexTest, RejectsForeignCharacters) {
  SpineIndex index(Alphabet::Dna());
  Status status = index.Append('x');
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(index.size(), 0u);  // index unchanged
  ASSERT_TRUE(index.Append('a').ok());
  EXPECT_FALSE(index.AppendString("ag!t").ok());
}

TEST(SpineIndexTest, CaseInsensitiveDna) {
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("AcGt").ok());
  EXPECT_TRUE(index.Contains("acgt"));
  EXPECT_TRUE(index.Contains("ACGT"));
}

TEST(SpineIndexTest, SingleCharacterString) {
  SpineIndex index = BuildDna("a");
  EXPECT_EQ(index.LinkDest(1), kRootNode);
  EXPECT_EQ(index.LinkLel(1), 0u);
  EXPECT_TRUE(index.Contains("a"));
  EXPECT_FALSE(index.Contains("c"));
  EXPECT_FALSE(index.Contains("aa"));
}

TEST(SpineIndexTest, RunOfIdenticalCharacters) {
  SpineIndex index = BuildDna(std::string(32, 'a'));
  for (uint32_t len = 1; len <= 32; ++len) {
    EXPECT_TRUE(index.Contains(std::string(len, 'a')));
  }
  EXPECT_FALSE(index.Contains(std::string(33, 'a')));
  // Node i's longest earlier suffix is everything but one character.
  for (NodeId i = 2; i <= 32; ++i) {
    EXPECT_EQ(index.LinkLel(i), i - 1);
    EXPECT_EQ(index.LinkDest(i), i - 1);
  }
  EXPECT_EQ(index.FindAll("aaa").size(), 30u);
}

TEST(SpineIndexTest, PatternLongerThanStringNotFound) {
  SpineIndex index = BuildDna("acgt");
  EXPECT_FALSE(index.Contains("acgta"));
}

TEST(SpineIndexTest, QueryWithForeignCharacterNotFound) {
  SpineIndex index = BuildDna("acgt");
  EXPECT_FALSE(index.Contains("a?g"));
  EXPECT_TRUE(index.FindAll("a?g").empty());
}

TEST(SpineIndexTest, ProteinAlphabet) {
  SpineIndex index(Alphabet::Protein());
  ASSERT_TRUE(index.AppendString("MKVLAMKVLA").ok());
  // 'M' maps through the protein alphabet; B/J/O/U/X/Z are not residues.
  EXPECT_TRUE(index.Contains("KVL"));
  EXPECT_EQ(index.FindAll("MKVLA"), (std::vector<uint32_t>{0, 5}));
  EXPECT_FALSE(index.Append('B').ok());
}

TEST(SpineIndexTest, ByteAlphabetIndexesArbitraryText) {
  SpineIndex index(Alphabet::Byte());
  ASSERT_TRUE(index.AppendString("the quick brown fox the quick").ok());
  EXPECT_EQ(index.FindAll("the quick"), (std::vector<uint32_t>{0, 20}));
  EXPECT_TRUE(index.Contains(" fox "));
  EXPECT_FALSE(index.Contains("lazy"));
}

// ---------------------------------------------------------------------
// Property tests against the brute-force oracle.
// ---------------------------------------------------------------------

using spine::test::RandomString;

struct PropertyCase {
  uint32_t sigma;
  uint32_t length;
  uint64_t seed;
};

class SpineOracleTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SpineOracleTest, LelMatchesBruteForce) {
  const PropertyCase param = GetParam();
  Rng rng(param.seed);
  std::string s = RandomString(rng, param.length, param.sigma);
  SpineIndex index(param.sigma <= 4 ? Alphabet::Dna() : Alphabet::Protein());
  ASSERT_TRUE(index.AppendString(s).ok());
  ASSERT_TRUE(index.Validate().ok());
  for (uint32_t i = 1; i <= param.length; ++i) {
    uint32_t expected = naive::LongestEarlierSuffix(s, i);
    ASSERT_EQ(index.LinkLel(i), expected)
        << "LEL mismatch at node " << i << " of \"" << s << "\"";
    // The link destination is the first-occurrence end of that suffix.
    std::string_view suffix =
        std::string_view(s).substr(i - expected, expected);
    ASSERT_EQ(index.LinkDest(i),
              static_cast<NodeId>(naive::FirstOccurrenceEnd(s, suffix)))
        << "link destination mismatch at node " << i << " of \"" << s << '"';
  }
}

TEST_P(SpineOracleTest, ContainsMatchesBruteForceForAllSubstrings) {
  const PropertyCase param = GetParam();
  Rng rng(param.seed + 1);
  std::string s = RandomString(rng, param.length, param.sigma);
  SpineIndex index(param.sigma <= 4 ? Alphabet::Dna() : Alphabet::Protein());
  ASSERT_TRUE(index.AppendString(s).ok());

  // Every true substring must be found, ending at its first occurrence.
  for (uint32_t start = 0; start < param.length; ++start) {
    for (uint32_t len = 1; start + len <= param.length; ++len) {
      std::string_view pattern = std::string_view(s).substr(start, len);
      auto end = index.FindFirstEnd(pattern);
      ASSERT_TRUE(end.has_value())
          << "false negative for \"" << pattern << "\" in \"" << s << '"';
      ASSERT_EQ(*end, naive::FirstOccurrenceEnd(s, pattern))
          << "wrong first occurrence for \"" << pattern << "\" in \"" << s
          << '"';
    }
  }

  // Random non-substrings must be rejected (no false positives).
  for (int trial = 0; trial < 300; ++trial) {
    uint32_t len = 1 + static_cast<uint32_t>(rng.Below(12));
    std::string pattern = RandomString(rng, len, param.sigma);
    bool expected = s.find(pattern) != std::string::npos;
    ASSERT_EQ(index.Contains(pattern), expected)
        << (expected ? "false negative" : "false positive") << " for \""
        << pattern << "\" in \"" << s << '"';
  }
}

TEST_P(SpineOracleTest, FindAllMatchesBruteForce) {
  const PropertyCase param = GetParam();
  Rng rng(param.seed + 2);
  std::string s = RandomString(rng, param.length, param.sigma);
  SpineIndex index(param.sigma <= 4 ? Alphabet::Dna() : Alphabet::Protein());
  ASSERT_TRUE(index.AppendString(s).ok());

  for (int trial = 0; trial < 200; ++trial) {
    // Mix true substrings and random patterns.
    std::string pattern;
    if (trial % 2 == 0) {
      uint32_t start = static_cast<uint32_t>(rng.Below(param.length));
      uint32_t len = 1 + static_cast<uint32_t>(
                             rng.Below(std::min<uint32_t>(
                                 20, param.length - start)));
      pattern = s.substr(start, len);
    } else {
      pattern = RandomString(rng, 1 + rng.Below(8), param.sigma);
    }
    ASSERT_EQ(index.FindAll(pattern),
              naive::FindAllOccurrences(s, pattern))
        << "occurrence set mismatch for \"" << pattern << "\" in \"" << s
        << '"';
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomStrings, SpineOracleTest,
    ::testing::Values(
        // Binary-like alphabets maximize repeats, stressing extrib chains.
        PropertyCase{2, 16, 11}, PropertyCase{2, 32, 12},
        PropertyCase{2, 64, 13}, PropertyCase{2, 100, 14},
        PropertyCase{2, 150, 15},
        PropertyCase{3, 48, 21}, PropertyCase{3, 96, 22},
        PropertyCase{4, 64, 31}, PropertyCase{4, 128, 32},
        PropertyCase{4, 200, 33},
        // Larger alphabets: sparse repeats.
        PropertyCase{16, 128, 41}, PropertyCase{19, 160, 42}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "sigma" + std::to_string(info.param.sigma) + "_len" +
             std::to_string(info.param.length) + "_seed" +
             std::to_string(info.param.seed);
    });

// Many short binary strings: exhaustive-ish stress over the regime where
// extrib chains and PRT sharing are densest.
TEST(SpineOracleStress, ManyShortBinaryStrings) {
  Rng rng(99);
  for (int round = 0; round < 400; ++round) {
    uint32_t length = 2 + static_cast<uint32_t>(rng.Below(40));
    std::string s = RandomString(rng, length, 2);
    SpineIndex index(Alphabet::Dna());
    ASSERT_TRUE(index.AppendString(s).ok());
    ASSERT_TRUE(index.Validate().ok()) << s;
    for (uint32_t i = 1; i <= length; ++i) {
      ASSERT_EQ(index.LinkLel(i), naive::LongestEarlierSuffix(s, i))
          << "string " << s << " node " << i;
    }
    for (uint32_t start = 0; start < length; ++start) {
      for (uint32_t len = 1; start + len <= length; ++len) {
        std::string_view pattern = std::string_view(s).substr(start, len);
        ASSERT_EQ(index.FindAll(pattern),
                  naive::FindAllOccurrences(s, pattern))
            << "string " << s << " pattern " << pattern;
      }
    }
  }
}

}  // namespace
}  // namespace spine
