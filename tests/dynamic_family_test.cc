// shard::DynamicFamily unit tests: lifecycle basics (create / open /
// insert / delete / flush / compact / reload), durability and volatile
// state, manifest-v2 registry routing, generation identity (cache_id /
// PinSnapshot), background triggers, and input validation. The
// exhaustive mutation-vs-oracle interleavings, fault schedules and
// concurrency races live in tests/lifecycle_differential_test.cc.

#include "shard/dynamic_family.h"

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/generalized_spine.h"
#include "core/query.h"
#include "core/registry.h"
#include "test_util.h"

namespace spine::shard {
namespace {

using spine::test::RandomDna;
using spine::test::ScopedTempDir;

std::vector<Query> AllKinds(const std::string& pattern, uint32_t min_len) {
  return {Query::Contains(pattern), Query::FindAll(pattern),
          Query::MatchingStats(pattern),
          Query::MaximalMatches(pattern, min_len),
          Query::MaximalMatches(pattern, min_len, /*expand=*/true)};
}

// The oracle from the class contract: a GeneralizedSpineIndex rebuilt
// from scratch over `docs` in order, answering through ExecuteQuery on
// its underlying index.
void ExpectAnswersMatchDocs(const DynamicFamily& family,
                            const std::vector<std::string>& docs,
                            const std::string& pattern,
                            const std::string& label) {
  GeneralizedSpineIndex oracle(family.alphabet());
  for (const std::string& doc : docs) ASSERT_TRUE(oracle.AddString(doc).ok());
  for (const Query& query : AllKinds(pattern, 3)) {
    QueryResult expected = ExecuteQuery(oracle.underlying(), query);
    QueryResult got = family.Execute(query);
    EXPECT_TRUE(got.SameAnswer(expected))
        << label << ", kind " << QueryKindName(query.kind) << ", pattern \""
        << pattern << "\": " << got.error;
  }
}

DynamicFamily::Options HeapOptions() { return DynamicFamily::Options{}; }

TEST(DynamicFamilyTest, CreateInsertQueryAccessors) {
  ScopedTempDir dir;
  auto family = DynamicFamily::Create(dir.File("fam.spinefam"),
                                      Alphabet::Dna(), HeapOptions());
  ASSERT_TRUE(family.ok()) << family.status().ToString();
  EXPECT_EQ((*family)->kind(), core::IndexKind::kDynamic);
  EXPECT_EQ((*family)->live_documents(), 0u);
  EXPECT_EQ((*family)->size(), 0u);

  auto id0 = (*family)->InsertDocument("ACGTACGT");
  auto id1 = (*family)->InsertDocument("TTTTGGGG");
  ASSERT_TRUE(id0.ok() && id1.ok());
  EXPECT_EQ(*id0, 0u);
  EXPECT_EQ(*id1, 1u);
  EXPECT_EQ((*family)->next_doc_id(), 2u);
  EXPECT_EQ((*family)->live_documents(), 2u);
  EXPECT_EQ((*family)->memtable_documents(), 2u);
  EXPECT_EQ((*family)->frozen_shard_count(), 0u);

  for (const char* pattern : {"ACGT", "TTTT", "GTAC", "CCCC", ""}) {
    ExpectAnswersMatchDocs(**family, {"ACGTACGT", "TTTTGGGG"}, pattern,
                           "memtable");
  }
  EXPECT_TRUE((*family)->VerifyStructure().ok());
}

TEST(DynamicFamilyTest, CreateFailsOnExistingPath) {
  ScopedTempDir dir;
  const std::string path = dir.File("fam.spinefam");
  auto first = DynamicFamily::Create(path, Alphabet::Dna(), HeapOptions());
  ASSERT_TRUE(first.ok());
  auto second = DynamicFamily::Create(path, Alphabet::Dna(), HeapOptions());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DynamicFamilyTest, RejectsInvalidDocumentsAndPatterns) {
  ScopedTempDir dir;
  auto family = DynamicFamily::Create(dir.File("fam.spinefam"),
                                      Alphabet::Dna(), HeapOptions());
  ASSERT_TRUE(family.ok());
  ASSERT_TRUE((*family)->InsertDocument("ACGT").ok());

  // Reserved separator bytes and out-of-alphabet characters never
  // enter the collection.
  EXPECT_EQ((*family)->InsertDocument("AC\x1fGT").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*family)->InsertDocument("AC\nGT").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*family)->InsertDocument("ACXT").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*family)->live_documents(), 1u);

  // Patterns carrying a separator could match across document
  // boundaries; they are refused loudly, in every query kind.
  const std::vector<std::string> bad_patterns = {std::string("A\x1f") + "C",
                                                 std::string("A\nC")};
  for (const std::string& pattern : bad_patterns) {
    for (const Query& query : AllKinds(pattern, 1)) {
      QueryResult result = (*family)->Execute(query);
      EXPECT_EQ(result.status_code, StatusCode::kInvalidArgument)
          << QueryKindName(query.kind);
    }
  }
}

TEST(DynamicFamilyTest, DeleteMasksImmediatelyAndReportsNotFoundTwice) {
  ScopedTempDir dir;
  auto family = DynamicFamily::Create(dir.File("fam.spinefam"),
                                      Alphabet::Dna(), HeapOptions());
  ASSERT_TRUE(family.ok());
  ASSERT_TRUE((*family)->InsertDocument("ACGTACGT").ok());
  ASSERT_TRUE((*family)->InsertDocument("GGGGCCCC").ok());
  ASSERT_TRUE((*family)->Flush().ok());       // both frozen
  ASSERT_TRUE((*family)->InsertDocument("TTTTAAAA").ok());  // memtable

  // Frozen delete.
  ASSERT_TRUE((*family)->DeleteDocument(0).ok());
  EXPECT_EQ((*family)->live_documents(), 2u);
  EXPECT_EQ((*family)->tombstone_count(), 1u);
  ExpectAnswersMatchDocs(**family, {"GGGGCCCC", "TTTTAAAA"}, "ACGT",
                         "frozen delete");
  // Memtable delete.
  ASSERT_TRUE((*family)->DeleteDocument(2).ok());
  ExpectAnswersMatchDocs(**family, {"GGGGCCCC"}, "TTTT", "memtable delete");

  EXPECT_EQ((*family)->DeleteDocument(0).code(), StatusCode::kNotFound);
  EXPECT_EQ((*family)->DeleteDocument(99).code(), StatusCode::kNotFound);
}

TEST(DynamicFamilyTest, FlushIsTheDurabilityPoint) {
  ScopedTempDir dir;
  const std::string path = dir.File("fam.spinefam");
  {
    auto family = DynamicFamily::Create(path, Alphabet::Dna(), HeapOptions());
    ASSERT_TRUE(family.ok());
    ASSERT_TRUE((*family)->InsertDocument("ACGTACGTAC").ok());
    ASSERT_TRUE((*family)->Flush().ok());
    ASSERT_TRUE((*family)->InsertDocument("GGGGGGGG").ok());  // volatile
  }
  auto reopened = DynamicFamily::Open(path, HeapOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->live_documents(), 1u);
  // The watermark reverts to the flushed manifest's value: the
  // discarded volatile document's id is free for reuse, since that
  // document never existed durably.
  EXPECT_EQ((*reopened)->next_doc_id(), 1u);
  ExpectAnswersMatchDocs(**reopened, {"ACGTACGTAC"}, "ACGT", "reopen");
  ExpectAnswersMatchDocs(**reopened, {"ACGTACGTAC"}, "GGGG", "reopen miss");
}

TEST(DynamicFamilyTest, DurableTombstoneSurvivesReopen) {
  ScopedTempDir dir;
  const std::string path = dir.File("fam.spinefam");
  {
    auto family = DynamicFamily::Create(path, Alphabet::Dna(), HeapOptions());
    ASSERT_TRUE(family.ok());
    ASSERT_TRUE((*family)->InsertDocument("ACGTACGT").ok());
    ASSERT_TRUE((*family)->InsertDocument("GGGGCCCC").ok());
    ASSERT_TRUE((*family)->Flush().ok());
    // Deleting a frozen document commits the manifest at delete time —
    // no flush needed for the tombstone to survive.
    ASSERT_TRUE((*family)->DeleteDocument(0).ok());
  }
  auto reopened = DynamicFamily::Open(path, HeapOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->live_documents(), 1u);
  EXPECT_EQ((*reopened)->tombstone_count(), 1u);
  ExpectAnswersMatchDocs(**reopened, {"GGGGCCCC"}, "ACGT", "tombstone");
}

TEST(DynamicFamilyTest, CompactMergesShardsDropsTombstonesAndDeadFiles) {
  ScopedTempDir dir;
  const std::string path = dir.File("fam.spinefam");
  auto family = DynamicFamily::Create(path, Alphabet::Dna(), HeapOptions());
  ASSERT_TRUE(family.ok());
  const std::vector<std::string> docs = {"ACGTACGTAC", "GGGGCCCCGG",
                                         "TTTTAAAATT"};
  for (const std::string& doc : docs) {
    ASSERT_TRUE((*family)->InsertDocument(doc).ok());
    ASSERT_TRUE((*family)->Flush().ok());  // one shard per document
  }
  ASSERT_EQ((*family)->frozen_shard_count(), 3u);
  ASSERT_TRUE((*family)->DeleteDocument(1).ok());
  ASSERT_EQ((*family)->tombstone_count(), 1u);

  ASSERT_TRUE((*family)->Compact().ok());
  EXPECT_EQ((*family)->frozen_shard_count(), 1u);
  EXPECT_EQ((*family)->tombstone_count(), 0u);
  EXPECT_EQ((*family)->live_documents(), 2u);
  ExpectAnswersMatchDocs(**family, {"ACGTACGTAC", "TTTTAAAATT"}, "ACGT",
                         "compacted");
  EXPECT_TRUE((*family)->VerifyStructure().ok());

  // Exactly the manifest and the one live image remain on disk.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    ++files;
    const std::string name = entry.path().filename().string();
    EXPECT_TRUE(name == "fam.spinefam" ||
                name == "fam.spinefam.g" +
                            std::to_string((*family)->generation_version()))
        << "stray file " << name;
  }
  EXPECT_EQ(files, 2u);
}

TEST(DynamicFamilyTest, ReloadDiscardsVolatileState) {
  ScopedTempDir dir;
  auto family = DynamicFamily::Create(dir.File("fam.spinefam"),
                                      Alphabet::Dna(), HeapOptions());
  ASSERT_TRUE(family.ok());
  ASSERT_TRUE((*family)->InsertDocument("ACGTACGT").ok());
  ASSERT_TRUE((*family)->Flush().ok());
  ASSERT_TRUE((*family)->InsertDocument("GGGGCCCC").ok());  // volatile
  const uint64_t before = (*family)->generation_version();

  ASSERT_TRUE((*family)->Reload().ok());
  EXPECT_EQ((*family)->live_documents(), 1u);
  EXPECT_EQ((*family)->memtable_documents(), 0u);
  EXPECT_GT((*family)->generation_version(), before);  // stays monotone
  ExpectAnswersMatchDocs(**family, {"ACGTACGT"}, "GGGG", "post-reload");
}

TEST(DynamicFamilyTest, GenerationVersionAndCacheIdAdvanceOnEveryMutation) {
  ScopedTempDir dir;
  auto family = DynamicFamily::Create(dir.File("fam.spinefam"),
                                      Alphabet::Dna(), HeapOptions());
  ASSERT_TRUE(family.ok());
  uint64_t version = (*family)->generation_version();
  uint64_t cache_id = (*family)->cache_id();
  const auto expect_advanced = [&](const char* what) {
    EXPECT_GT((*family)->generation_version(), version) << what;
    EXPECT_NE((*family)->cache_id(), cache_id) << what;
    version = (*family)->generation_version();
    cache_id = (*family)->cache_id();
  };
  ASSERT_TRUE((*family)->InsertDocument("ACGTACGT").ok());
  expect_advanced("insert");
  ASSERT_TRUE((*family)->Flush().ok());
  expect_advanced("flush");
  ASSERT_TRUE((*family)->DeleteDocument(0).ok());
  expect_advanced("delete");
}

TEST(DynamicFamilyTest, PinnedSnapshotIsImmuneToLaterMutations) {
  ScopedTempDir dir;
  auto family = DynamicFamily::Create(dir.File("fam.spinefam"),
                                      Alphabet::Dna(), HeapOptions());
  ASSERT_TRUE(family.ok());
  ASSERT_TRUE((*family)->InsertDocument("ACGTACGT").ok());

  std::shared_ptr<const core::Index> snapshot = (*family)->PinSnapshot();
  ASSERT_NE(snapshot, nullptr);
  const uint64_t pinned_cache_id = snapshot->cache_id();
  const QueryResult before = snapshot->Execute(Query::FindAll("ACGT"));

  ASSERT_TRUE((*family)->DeleteDocument(0).ok());
  ASSERT_TRUE((*family)->InsertDocument("GGGGGGGG").ok());

  // The snapshot still answers from its generation, under its cache id.
  const QueryResult after = snapshot->Execute(Query::FindAll("ACGT"));
  EXPECT_TRUE(after.SameAnswer(before));
  EXPECT_EQ(after.hits.size(), 2u);
  EXPECT_EQ(snapshot->cache_id(), pinned_cache_id);
  EXPECT_NE((*family)->cache_id(), pinned_cache_id);
  // The family itself sees the new state.
  EXPECT_FALSE((*family)->Execute(Query::Contains("ACGT")).found);
}

TEST(DynamicFamilyTest, RegistrySniffsManifestV2ToDynamicBackend) {
  ScopedTempDir dir;
  const std::string path = dir.File("fam.spinefam");
  {
    auto family = DynamicFamily::Create(path, Alphabet::Dna(), HeapOptions());
    ASSERT_TRUE(family.ok());
    ASSERT_TRUE((*family)->InsertDocument("ACGTACGTAC").ok());
    ASSERT_TRUE((*family)->Flush().ok());
  }
  core::OpenOptions open;
  auto index = core::BackendRegistry::Default().Open(path, open);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ((*index)->kind(), core::IndexKind::kDynamic);
  EXPECT_TRUE((*index)->Execute(Query::Contains("GTAC")).found);
  EXPECT_TRUE((*index)->VerifyStructure().ok());
}

TEST(DynamicFamilyTest, MmapOpenAgreesWithHeapOpen) {
  ScopedTempDir dir;
  const std::string path = dir.File("fam.spinefam");
  Rng rng(99);
  std::vector<std::string> docs;
  {
    auto family = DynamicFamily::Create(path, Alphabet::Dna(), HeapOptions());
    ASSERT_TRUE(family.ok());
    for (int i = 0; i < 3; ++i) {
      docs.push_back(RandomDna(rng, 200));
      ASSERT_TRUE((*family)->InsertDocument(docs.back()).ok());
      ASSERT_TRUE((*family)->Flush().ok());
    }
  }
  DynamicFamily::Options mmap_options;
  mmap_options.open.mode = core::OpenMode::kMmap;
  auto mapped = DynamicFamily::Open(path, mmap_options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  for (int i = 0; i < 10; ++i) {
    const std::string& doc = docs[rng.Below(docs.size())];
    const std::string pattern = doc.substr(rng.Below(doc.size() - 8), 8);
    ExpectAnswersMatchDocs(**mapped, docs, pattern, "mmap open");
  }
  EXPECT_TRUE((*mapped)->VerifyStructure().ok());
}

TEST(DynamicFamilyTest, BackgroundTriggersFlushAndCompactOnTheirOwn) {
  ScopedTempDir dir;
  DynamicFamily::Options options;
  options.flush_threshold_bytes = 64;
  options.compact_fanout = 2;
  auto family = DynamicFamily::Create(dir.File("fam.spinefam"),
                                      Alphabet::Dna(), options);
  ASSERT_TRUE(family.ok());
  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*family)->InsertDocument(RandomDna(rng, 48)).ok());
  }
  // The background thread owes us at least one flush (8 * 48 bytes
  // against a 64-byte threshold); the tail of the memtable may stay
  // below the threshold and is legitimately still volatile. Poll with
  // a deadline, no sleep-based synchronization.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((*family)->frozen_shard_count() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE((*family)->frozen_shard_count(), 1u) << "background flush stuck";
  EXPECT_TRUE((*family)->TakeBackgroundError().ok());
  EXPECT_EQ((*family)->live_documents(), 8u);
  EXPECT_TRUE((*family)->VerifyStructure().ok());
}

}  // namespace
}  // namespace spine::shard
