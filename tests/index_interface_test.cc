// core::Index interface tests: cache-id discipline, honest capability
// reporting, registry name/magic dispatch over every persistent
// artifact, N-backend agreement through the QueryEngine (generalized
// and CDAWG backends included), and loud unsupported-kind errors.

#include "core/index.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "compact/compact_spine.h"
#include "compact/generalized_compact.h"
#include "compact/serializer.h"
#include "core/adapters.h"
#include "core/generalized_spine.h"
#include "core/query.h"
#include "core/registry.h"
#include "core/spine_index.h"
#include "dawg/compact_dawg.h"
#include "engine/query_engine.h"
#include "shard/sharded_index.h"
#include "storage/disk_spine.h"
#include "storage/disk_suffix_tree.h"
#include "suffix_tree/suffix_tree.h"

#include "backend_agreement.h"
#include "test_util.h"

namespace spine::core {
namespace {

using spine::test::BackendFleet;
using spine::test::ExpectAllBackendsAgree;
using spine::test::MixedQueries;
using spine::test::ScopedTempDir;
using spine::test::TestCorpus;

TEST(IndexInterfaceTest, CacheIdsAreUniqueAndNonZero) {
  const std::string text = "ACGTACGTAC";
  CompactSpineIndex backend(Alphabet::Dna());
  ASSERT_TRUE(backend.AppendString(text).ok());

  CompactSpineAdapter a(backend);
  CompactSpineAdapter b(backend);
  NaiveTextAdapter c(Alphabet::Dna(), text);
  EXPECT_NE(a.cache_id(), 0u);
  EXPECT_NE(a.cache_id(), b.cache_id());
  EXPECT_NE(b.cache_id(), c.cache_id());
  EXPECT_NE(a.cache_id(), c.cache_id());
}

TEST(IndexInterfaceTest, CapabilitiesReportHonestly) {
  const std::string text = TestCorpus(2'000);
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(text).ok());
  CompactSpineAdapter compact_adapter(compact);
  EXPECT_TRUE(compact_adapter.capabilities().concurrent_reads);
  EXPECT_TRUE(compact_adapter.capabilities().persistent);
  EXPECT_TRUE(compact_adapter.capabilities().supports_approx);
  for (QueryKind kind :
       {QueryKind::kContains, QueryKind::kFindAll, QueryKind::kMaximalMatches,
        QueryKind::kMatchingStats}) {
    EXPECT_TRUE(compact_adapter.capabilities().Supports(kind));
  }

  Result<CompactDawg> dawg = CompactDawg::Build(Alphabet::Dna(), text);
  ASSERT_TRUE(dawg.ok()) << dawg.status().ToString();
  CompactDawgAdapter dawg_adapter(*dawg);
  EXPECT_TRUE(dawg_adapter.capabilities().Supports(QueryKind::kContains));
  EXPECT_FALSE(dawg_adapter.capabilities().Supports(QueryKind::kFindAll));
  EXPECT_FALSE(
      dawg_adapter.capabilities().Supports(QueryKind::kMaximalMatches));
  EXPECT_FALSE(
      dawg_adapter.capabilities().Supports(QueryKind::kMatchingStats));
}

TEST(IndexInterfaceTest, RegistryNamesAndKindsRoundTrip) {
  const BackendRegistry& registry = BackendRegistry::Default();
  EXPECT_FALSE(registry.backends().empty());
  for (const BackendInfo& info : registry.backends()) {
    EXPECT_EQ(info.name, IndexKindName(info.kind));
    EXPECT_EQ(registry.FindByName(info.name), &info);
    EXPECT_EQ(registry.FindByKind(info.kind), &info);
  }
  EXPECT_EQ(registry.FindByName("no-such-backend"), nullptr);

  const std::string path = spine::test::TempPath("iface_no_artifact.bin");
  Result<std::unique_ptr<Index>> opened = registry.OpenAs("naive", path);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  opened = registry.OpenAs("bogus", path);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

// Every persistent artifact kind reopens through the registry's magic
// sniff, comes back as the right IndexKind, and answers a findall
// exactly like the in-memory index it was saved from.
TEST(IndexInterfaceTest, RegistryOpensEveryPersistentArtifact) {
  ScopedTempDir dir("iface_registry");
  const std::string corpus = TestCorpus(3'000);
  const Query probe = Query::FindAll(corpus.substr(100, 10));

  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(corpus).ok());
  const QueryResult expected = ExecuteQuery(compact, probe);
  ASSERT_TRUE(expected.found);

  const std::string compact_path = dir.File("a.spine");
  ASSERT_TRUE(SaveCompactSpine(compact, compact_path).ok());

  GeneralizedCompactSpine gen(Alphabet::Dna());
  ASSERT_TRUE(gen.AddString(corpus, "chr1").ok());
  const std::string gen_path = dir.File("a.spineg");
  ASSERT_TRUE(gen.Save(gen_path).ok());

  const std::string disk_path = dir.File("a.disk");
  {
    auto disk =
        storage::DiskSpine::Create(Alphabet::Dna(), disk_path, {});
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    ASSERT_TRUE((*disk)->AppendString(corpus).ok());
    ASSERT_TRUE((*disk)->Checkpoint().ok());
  }
  const std::string tree_path = dir.File("a.st");
  {
    auto tree =
        storage::DiskSuffixTree::Create(Alphabet::Dna(), tree_path, {});
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    ASSERT_TRUE((*tree)->AppendString(corpus).ok());
    ASSERT_TRUE((*tree)->Checkpoint().ok());
  }
  const std::string fam_path = dir.File("a.spinefam");
  {
    auto family = shard::ShardedIndex::Build(Alphabet::Dna(), corpus,
                                             {.shards = 3, .max_pattern = 64});
    ASSERT_TRUE(family.ok()) << family.status().ToString();
    ASSERT_TRUE((*family)->Save(fam_path).ok());
  }

  const struct {
    std::string path;
    IndexKind kind;
  } artifacts[] = {
      {compact_path, IndexKind::kCompactSpine},
      {gen_path, IndexKind::kGeneralizedCompact},
      {disk_path, IndexKind::kDiskSpine},
      {tree_path, IndexKind::kDiskSuffixTree},
      {fam_path, IndexKind::kSharded},
  };
  for (const auto& artifact : artifacts) {
    Result<std::unique_ptr<Index>> index =
        BackendRegistry::Default().Open(artifact.path);
    ASSERT_TRUE(index.ok())
        << artifact.path << ": " << index.status().ToString();
    EXPECT_EQ((*index)->kind(), artifact.kind) << artifact.path;
    EXPECT_TRUE((*index)->capabilities().persistent) << artifact.path;
    EXPECT_TRUE((*index)->VerifyStructure().ok()) << artifact.path;
    QueryResult got = (*index)->Execute(probe);
    ASSERT_TRUE(got.ok()) << artifact.path << ": " << got.error;
    EXPECT_TRUE(got.SameAnswer(expected)) << artifact.path;
  }

  // Garbage magic is corruption, not a crash or a misparse.
  const std::string garbage = dir.File("garbage.bin");
  spine::test::WriteFile(garbage, "this is not an index artifact");
  Result<std::unique_ptr<Index>> bad = BackendRegistry::Default().Open(garbage);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

// Every backend, one engine, one batch: every answer byte-identical to
// the brute-force oracle for every kind the backend supports. The
// fleet and the agreement loop live in backend_agreement.h, shared
// with the per-kernel differential suite.
TEST(IndexInterfaceTest, AllBackendsAgreeThroughTheEngine) {
  const std::string corpus = TestCorpus(6'000);
  const std::vector<Query> queries = MixedQueries(corpus, 100);
  BackendFleet fleet(Alphabet::Dna(), corpus);
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  ExpectAllBackendsAgree(fleet.indexes(), queries, "dna");
}

// The CDAWG answers kContains; everything else is a loud
// kInvalidArgument result, both directly and through the engine.
TEST(IndexInterfaceTest, UnsupportedKindsFailLoudly) {
  const std::string corpus = TestCorpus(2'000);
  Result<CompactDawg> dawg = CompactDawg::Build(Alphabet::Dna(), corpus);
  ASSERT_TRUE(dawg.ok()) << dawg.status().ToString();
  CompactDawgAdapter adapter(*dawg);

  QueryResult yes = adapter.Execute(Query::Contains(corpus.substr(10, 12)));
  ASSERT_TRUE(yes.ok()) << yes.error;
  EXPECT_TRUE(yes.found);

  QueryResult bad = adapter.Execute(Query::FindAll(corpus.substr(10, 12)));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status_code, StatusCode::kInvalidArgument);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_TRUE(bad.hits.empty());

  const std::vector<Query> queries = {
      Query::Contains(corpus.substr(0, 8)),
      Query::FindAll(corpus.substr(0, 8)),
      Query::MatchingStats(corpus.substr(0, 8)),
  };
  engine::QueryEngine engine({.threads = 2, .cache_bytes = 0});
  engine::BatchStats stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(adapter, queries, &stats);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  EXPECT_EQ(stats.failed, 2u);
}

// Regression for the PR 1 footgun: two live indexes can never serve
// each other's cached answers, because ids are issued per instance at
// construction instead of picked by the caller.
TEST(IndexInterfaceTest, CacheNeverCrossServesDistinctIndexes) {
  const std::string corpus_a = TestCorpus(4'000, /*seed=*/1);
  const std::string corpus_b = TestCorpus(4'000, /*seed=*/2);
  CompactSpineIndex index_a(Alphabet::Dna());
  ASSERT_TRUE(index_a.AppendString(corpus_a).ok());
  CompactSpineIndex index_b(Alphabet::Dna());
  ASSERT_TRUE(index_b.AppendString(corpus_b).ok());
  CompactSpineAdapter a(index_a);
  CompactSpineAdapter b(index_b);

  std::vector<Query> queries;
  for (size_t i = 0; i < 40; ++i) {
    queries.push_back(
        Query::FindAll(corpus_a.substr((i * 97) % 3'000, 6 + i % 6)));
  }
  std::vector<QueryResult> expect_a, expect_b;
  for (const Query& q : queries) {
    expect_a.push_back(ExecuteQuery(index_a, q));
    expect_b.push_back(ExecuteQuery(index_b, q));
  }

  // One shared engine + warm cache, both indexes queried twice
  // interleaved: round two is all cache hits, yet every answer still
  // belongs to its own index.
  engine::QueryEngine engine({.threads = 2, .cache_bytes = 8 << 20});
  for (int round = 0; round < 2; ++round) {
    engine::BatchStats stats_a, stats_b;
    std::vector<QueryResult> got_a = engine.ExecuteBatch(a, queries, &stats_a);
    std::vector<QueryResult> got_b = engine.ExecuteBatch(b, queries, &stats_b);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(got_a[i].SameAnswer(expect_a[i]))
          << "round " << round << ", query " << i;
      EXPECT_TRUE(got_b[i].SameAnswer(expect_b[i]))
          << "round " << round << ", query " << i;
    }
    if (round == 1) {
      EXPECT_EQ(stats_a.cache_hits, queries.size());
      EXPECT_EQ(stats_b.cache_hits, queries.size());
    }
  }
}

}  // namespace
}  // namespace spine::core
