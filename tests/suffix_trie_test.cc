// Tests for the uncompacted suffix trie, including the paper's
// Figure 1-3 node/edge counts for the running example — a structural
// fidelity check of the whole compaction story.

#include "trie/suffix_trie.h"

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compact/compact_spine.h"
#include "core/spine_index.h"
#include "suffix_tree/suffix_tree.h"

namespace spine {
namespace {

TEST(SuffixTrieTest, PaperFigure1To3Counts) {
  const std::string s = "aaccacaaca";
  Result<SuffixTrie> trie = SuffixTrie::Build(Alphabet::Dna(), s);
  ASSERT_TRUE(trie.ok());

  // Figure 1: the trie for "aaccacaaca" (counting its nodes by hand
  // from the suffix set) — 34 non-root nodes = 34 distinct substrings.
  // Verify against the number of distinct substrings.
  std::set<std::string> substrings;
  for (size_t start = 0; start < s.size(); ++start) {
    for (size_t len = 1; start + len <= s.size(); ++len) {
      substrings.insert(s.substr(start, len));
    }
  }
  EXPECT_EQ(trie->node_count(), substrings.size() + 1);  // + root
  EXPECT_EQ(trie->edge_count(), substrings.size());

  // Section 1.1: "the suffix tree has 13 nodes and 16 edges" — our
  // online tree is implicit (no terminator), so implicit suffixes that
  // are prefixes of others have no leaf: the explicit node count is
  // bounded by the paper's 13.
  SuffixTree tree(Alphabet::Dna());
  ASSERT_TRUE(tree.AppendString(s).ok());
  EXPECT_LE(tree.node_count(), 13u);

  // "a SPINE index ... has 11 nodes" (root + one per character).
  SpineIndex spine(Alphabet::Dna());
  ASSERT_TRUE(spine.AppendString(s).ok());
  EXPECT_EQ(spine.size() + 1, 11u);

  // And 26 edges: 10 vertebras + 10 links + ribs + extribs.
  uint64_t spine_edges =
      10 + 10 + spine.rib_count() + spine.extrib_count();
  EXPECT_EQ(spine_edges, 26u);
}

TEST(SuffixTrieTest, ContainsMatchesDefinition) {
  Rng rng(4);
  const char* letters = "ACGT";
  for (int round = 0; round < 50; ++round) {
    uint32_t len = 2 + static_cast<uint32_t>(rng.Below(60));
    std::string s;
    for (uint32_t i = 0; i < len; ++i) s.push_back(letters[rng.Below(4)]);
    Result<SuffixTrie> trie = SuffixTrie::Build(Alphabet::Dna(), s);
    ASSERT_TRUE(trie.ok());
    for (int trial = 0; trial < 60; ++trial) {
      std::string pattern;
      for (uint32_t i = 0; i < 1 + rng.Below(8); ++i) {
        pattern.push_back(letters[rng.Below(4)]);
      }
      ASSERT_EQ(trie->Contains(pattern),
                s.find(pattern) != std::string::npos)
          << "s=" << s << " pattern=" << pattern;
    }
  }
}

TEST(SuffixTrieTest, CompactionRatiosOrdering) {
  // trie nodes >= suffix tree nodes >= SPINE nodes, on any string.
  Rng rng(6);
  const char* letters = "ACGT";
  for (int round = 0; round < 20; ++round) {
    uint32_t len = 10 + static_cast<uint32_t>(rng.Below(200));
    std::string s;
    for (uint32_t i = 0; i < len; ++i) s.push_back(letters[rng.Below(3)]);
    Result<SuffixTrie> trie = SuffixTrie::Build(Alphabet::Dna(), s);
    ASSERT_TRUE(trie.ok());
    SuffixTree tree(Alphabet::Dna());
    ASSERT_TRUE(tree.AppendString(s).ok());
    CompactSpineIndex spine(Alphabet::Dna());
    ASSERT_TRUE(spine.AppendString(s).ok());
    EXPECT_GE(trie->node_count(), tree.node_count());
    EXPECT_GE(tree.node_count(), spine.size());  // ST can reach 2n
    EXPECT_EQ(spine.size(), len);                // SPINE: exactly n
  }
}

TEST(SuffixTrieTest, RejectsBadInput) {
  EXPECT_FALSE(SuffixTrie::Build(Alphabet::Dna(), "ACGX").ok());
  std::string huge(SuffixTrie::kMaxLength + 1, 'A');
  EXPECT_FALSE(SuffixTrie::Build(Alphabet::Dna(), huge).ok());
}

TEST(SuffixTrieTest, EmptyString) {
  Result<SuffixTrie> trie = SuffixTrie::Build(Alphabet::Dna(), "");
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->node_count(), 1u);
  EXPECT_TRUE(trie->Contains(""));
  EXPECT_FALSE(trie->Contains("A"));
}

}  // namespace
}  // namespace spine
