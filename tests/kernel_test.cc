// Golden corpus for the comparison kernels: every dispatch level must
// be byte-identical to an independent naive reference on lengths that
// straddle every comparison block size (8-byte SWAR words, 16-byte SSE2
// lanes, 32-byte AVX2 lanes, the 4 KiB page), at every mismatch offset,
// from unaligned starts. Buffers are exactly sized so any over-read
// past the tail trips ASan redzones in the sanitizer CI job.

#include "kernel/kernel.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "alphabet/alphabet.h"
#include "alphabet/packed_string.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace spine::kernel {
namespace {

// Independent references, deliberately the dumbest possible code.
size_t NaiveMatchRun(const uint8_t* a, const uint8_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}

size_t NaiveMatchRunCodes(const std::vector<uint8_t>& a, size_t a_start,
                          const std::vector<uint8_t>& b, size_t b_start,
                          size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[a_start + i] != b[b_start + i]) return i;
  }
  return n;
}

std::vector<Kind> AllKinds() {
  return {Kind::kScalar, Kind::kSwar, Kind::kSse2, Kind::kAvx2};
}

// Lengths straddling every block size a kernel uses internally.
const size_t kLengths[] = {0, 1, 7, 8, 15, 16, 31, 32, 33, 4095, 4096, 4097};

// All offsets for short runs; head, tail and a prime stride for long
// ones (every block position is still hit, cost stays bounded).
std::vector<size_t> MismatchOffsets(size_t len) {
  std::vector<size_t> offsets;
  if (len <= 64) {
    for (size_t i = 0; i < len; ++i) offsets.push_back(i);
    return offsets;
  }
  for (size_t i : {size_t{0}, size_t{1}, len / 2, len - 2, len - 1}) {
    offsets.push_back(i);
  }
  for (size_t i = 3; i < len; i += 509) offsets.push_back(i);
  return offsets;
}

TEST(KernelTest, NamesAndParsingRoundTrip) {
  for (Kind kind : AllKinds()) {
    EXPECT_EQ(ParseKind(KindName(kind)), kind);
  }
  EXPECT_FALSE(ParseKind("bogus").has_value());
  EXPECT_FALSE(ParseKind("").has_value());
}

TEST(KernelTest, ScalarAndSwarAlwaysSupported) {
  EXPECT_TRUE(Supported(Kind::kScalar));
  EXPECT_TRUE(Supported(Kind::kSwar));
  const std::vector<Kind> kinds = SupportedKinds();
  EXPECT_GE(kinds.size(), 2u);
  for (Kind kind : kinds) EXPECT_TRUE(Supported(kind));
}

TEST(KernelTest, UnsupportedKindsRefuseToForce) {
  for (Kind kind : AllKinds()) {
    if (Supported(kind)) continue;
    EXPECT_FALSE(Force(kind).ok()) << KindName(kind);
  }
  EXPECT_FALSE(ForceByName("no-such-kernel").ok());
}

// Byte-path golden corpus: every kind x unaligned start x length x
// mismatch offset, exact-sized heap buffers.
TEST(KernelTest, MatchRunGoldenCorpus) {
  Rng rng(1234);
  for (Kind kind : AllKinds()) {
    if (!Supported(kind)) {
      GTEST_LOG_(INFO) << "skipping unsupported " << KindName(kind);
      continue;
    }
    const Ops& ops = Get(kind);
    ASSERT_EQ(ops.kind, kind);
    for (size_t start = 0; start <= 8; ++start) {
      for (size_t len : kLengths) {
        std::vector<uint8_t> a_buf(start + len), b_buf(start + len);
        for (size_t i = 0; i < a_buf.size(); ++i) {
          a_buf[i] = static_cast<uint8_t>(rng.Below(256));
        }
        b_buf = a_buf;
        const uint8_t* a = a_buf.data() + start;
        uint8_t* b = b_buf.data() + start;
        EXPECT_EQ(ops.match_run(a, b, len), len)
            << KindName(kind) << " start=" << start << " len=" << len;
        EXPECT_TRUE(ops.verify_eq(a, b, len));
        for (size_t off : MismatchOffsets(len)) {
          const uint8_t saved = b[off];
          b[off] = static_cast<uint8_t>(saved ^ 0x5a);
          EXPECT_EQ(ops.match_run(a, b, len), off)
              << KindName(kind) << " start=" << start << " len=" << len
              << " off=" << off;
          EXPECT_EQ(ops.match_run(a, b, len), NaiveMatchRun(a, b, len));
          EXPECT_FALSE(ops.verify_eq(a, b, len));
          b[off] = saved;
        }
      }
    }
  }
}

// Packed-path golden corpus: 2-bit DNA, 5-bit protein and 8-bit codes,
// at every combination of text/pattern leading-code offsets (the two
// windows straddle word boundaries differently), against the per-code
// reference.
TEST(KernelTest, MatchRunPackedGoldenCorpus) {
  Rng rng(987);
  const size_t kPackedLengths[] = {0, 1, 12, 31, 32, 33, 63, 64, 65, 1000};
  for (Kind kind : AllKinds()) {
    if (!Supported(kind)) continue;
    const Ops& ops = Get(kind);
    for (uint32_t bpc : {2u, 5u, 8u}) {
      const uint8_t mask = static_cast<uint8_t>((1u << bpc) - 1);
      for (size_t lead_a : {0u, 1u, 3u, 31u, 32u, 33u}) {
        for (size_t lead_b : {0u, 7u, 32u}) {
          for (size_t len : kPackedLengths) {
            std::vector<uint8_t> codes(len);
            for (auto& c : codes) c = static_cast<uint8_t>(rng.Below(256)) & mask;
            PackedString a(bpc), b(bpc);
            for (size_t i = 0; i < lead_a; ++i) {
              a.Append(static_cast<Code>(rng.Below(256) & mask));
            }
            for (size_t i = 0; i < lead_b; ++i) {
              b.Append(static_cast<Code>(rng.Below(256) & mask));
            }
            for (uint8_t c : codes) {
              a.Append(c);
              b.Append(c);
            }
            const uint64_t a_bit = static_cast<uint64_t>(lead_a) * bpc;
            const uint64_t b_bit = static_cast<uint64_t>(lead_b) * bpc;
            EXPECT_EQ(ops.match_run_packed(a.words().data(), a.words().size(),
                                           a_bit, b.words().data(),
                                           b.words().size(), b_bit, len, bpc),
                      len)
                << KindName(kind) << " bpc=" << bpc << " lead_a=" << lead_a
                << " lead_b=" << lead_b << " len=" << len;
            for (size_t off : MismatchOffsets(len)) {
              // Rebuild b with a flipped code at `off`.
              PackedString mutated(bpc);
              for (size_t i = 0; i < lead_b; ++i) {
                mutated.Append(b.Get(i));
              }
              for (size_t i = 0; i < len; ++i) {
                uint8_t c = codes[i];
                if (i == off) c = static_cast<uint8_t>(c ^ 1) & mask;
                mutated.Append(c);
              }
              EXPECT_EQ(
                  ops.match_run_packed(a.words().data(), a.words().size(),
                                       a_bit, mutated.words().data(),
                                       mutated.words().size(), b_bit, len, bpc),
                  off)
                  << KindName(kind) << " bpc=" << bpc << " lead_a=" << lead_a
                  << " lead_b=" << lead_b << " len=" << len << " off=" << off;
            }
          }
        }
      }
    }
  }
}

// Every wider kernel must agree with scalar on identical inputs — the
// dispatch levels are interchangeable by construction.
TEST(KernelTest, AllKindsByteIdenticalToScalar) {
  Rng rng(555);
  const Ops& scalar = Get(Kind::kScalar);
  for (size_t trial = 0; trial < 200; ++trial) {
    const size_t len = rng.Below(600);
    const size_t start = rng.Below(9);
    std::vector<uint8_t> a_buf(start + len), b_buf(start + len);
    for (size_t i = 0; i < a_buf.size(); ++i) {
      a_buf[i] = static_cast<uint8_t>(rng.Below(4));
      b_buf[i] = static_cast<uint8_t>(rng.Below(4));
    }
    const uint8_t* a = a_buf.data() + start;
    const uint8_t* b = b_buf.data() + start;
    const size_t expected = scalar.match_run(a, b, len);
    EXPECT_EQ(expected, NaiveMatchRun(a, b, len));
    for (Kind kind : SupportedKinds()) {
      const Ops& ops = Get(kind);
      EXPECT_EQ(ops.match_run(a, b, len), expected) << KindName(kind);
      EXPECT_EQ(ops.verify_eq(a, b, len), expected == len) << KindName(kind);
    }
  }
}

TEST(KernelTest, PackedRandomAgreesWithCodeReference) {
  Rng rng(31337);
  for (size_t trial = 0; trial < 150; ++trial) {
    const uint32_t bpc = trial % 2 == 0 ? 2 : 5;
    const uint8_t mask = static_cast<uint8_t>((1u << bpc) - 1);
    const size_t a_total = 1 + rng.Below(700);
    const size_t b_total = 1 + rng.Below(700);
    std::vector<uint8_t> a_codes(a_total), b_codes(b_total);
    PackedString a(bpc), b(bpc);
    for (auto& c : a_codes) {
      c = static_cast<uint8_t>(rng.Below(256)) & mask;
      a.Append(c);
    }
    for (auto& c : b_codes) {
      c = static_cast<uint8_t>(rng.Below(256)) & mask;
      b.Append(c);
    }
    const size_t a_start = rng.Below(a_total);
    const size_t b_start = rng.Below(b_total);
    const size_t n =
        std::min(a_total - a_start, b_total - b_start) == 0
            ? 0
            : rng.Below(std::min(a_total - a_start, b_total - b_start) + 1);
    const size_t expected = NaiveMatchRunCodes(a_codes, a_start, b_codes,
                                               b_start, n);
    for (Kind kind : SupportedKinds()) {
      EXPECT_EQ(Get(kind).match_run_packed(
                    a.words().data(), a.words().size(),
                    static_cast<uint64_t>(a_start) * bpc, b.words().data(),
                    b.words().size(), static_cast<uint64_t>(b_start) * bpc, n,
                    bpc),
                expected)
          << KindName(kind) << " trial=" << trial;
    }
  }
}

TEST(KernelTest, EncodedPatternFencesInvalidCharacters) {
  const Alphabet& dna = Alphabet::Dna();
  EncodedPattern p(dna, "ACGT#ACG#T");
  ASSERT_EQ(p.size(), 10u);
  EXPECT_EQ(p.ValidRunLength(0), 4u);  // up to the first '#'
  EXPECT_EQ(p.ValidRunLength(3), 1u);
  EXPECT_EQ(p.ValidRunLength(4), 0u);  // sitting on the '#'
  EXPECT_EQ(p.ValidRunLength(5), 3u);
  EXPECT_EQ(p.ValidRunLength(8), 0u);
  EXPECT_EQ(p.ValidRunLength(9), 1u);
  EXPECT_EQ(p.code(4), kInvalidCode);
  EXPECT_NE(p.code(0), kInvalidCode);

  EncodedPattern clean(dna, "ACGTACGT");
  EXPECT_EQ(clean.ValidRunLength(0), 8u);
  EXPECT_EQ(clean.ValidRunLength(7), 1u);
  EXPECT_EQ(clean.ValidRunLength(8), 0u);  // past the end

  EncodedPattern empty(dna, "");
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.ValidRunLength(0), 0u);
}

// The metered wrappers feed the per-kernel byte counters and the
// dispatch gauge reflects whatever was last forced. Compiled out with
// the rest of the obs layer under SPINE_OBS_DISABLED.
#if !defined(SPINE_OBS_DISABLED)
TEST(KernelTest, ObservabilityCountersAndGauge) {
  const std::string a(1024, 'x');
  const std::string b(1024, 'x');
  for (Kind kind : SupportedKinds()) {
    ASSERT_TRUE(Force(kind).ok());
    EXPECT_EQ(ActiveKind(), kind);
    EXPECT_EQ(obs::Registry::Default()
                  .GetGauge("kernel.dispatch")
                  .value(),
              static_cast<int64_t>(kind));
    obs::Counter& bytes = obs::Registry::Default().GetCounter(
        std::string("kernel.") + KindName(kind) + ".bytes_compared");
    const uint64_t before = bytes.value();
    EXPECT_TRUE(VerifyEq(a, b));
    EXPECT_EQ(MatchRun(a, b), a.size());
    EXPECT_GE(bytes.value(), before + 2 * a.size());
  }
  (void)ForceByName("auto");
}
#endif  // !SPINE_OBS_DISABLED

}  // namespace
}  // namespace spine::kernel
