// Tests for the statistics collectors behind Tables 3-4 and Figure 8.

#include "core/spine_stats.h"

#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "compact/compact_spine.h"
#include "seq/generator.h"

namespace spine {
namespace {

SpineIndex Build(std::string_view s) {
  SpineIndex index(Alphabet::Dna());
  EXPECT_TRUE(index.AppendString(s).ok());
  return index;
}

TEST(SpineStatsTest, LabelMaximaOnPaperExample) {
  SpineIndex index = Build("aaccacaaca");
  LabelMaxima maxima = ComputeLabelMaxima(index);
  // From the worked example: LEL up to 3 (node 9/10), PT up to 3
  // (the extrib 7 -> 10), PRT 1.
  EXPECT_EQ(maxima.max_lel, 3u);
  EXPECT_EQ(maxima.max_pt, 3u);
  EXPECT_EQ(maxima.max_prt, 1u);
}

TEST(SpineStatsTest, LabelMaximaMatchCompactTracking) {
  seq::GeneratorOptions options;
  options.length = 30000;
  options.seed = 77;
  std::string s = seq::GenerateSequence(Alphabet::Dna(), options);
  SpineIndex reference(Alphabet::Dna());
  ASSERT_TRUE(reference.AppendString(s).ok());
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(s).ok());

  LabelMaxima maxima = ComputeLabelMaxima(reference);
  EXPECT_EQ(maxima.max_lel, compact.max_lel());
  EXPECT_EQ(maxima.max_pt, compact.max_pt());
  EXPECT_EQ(maxima.max_prt, compact.max_prt());
}

TEST(SpineStatsTest, RibDistributionCountsEdges) {
  SpineIndex index = Build("aaccacaaca");
  RibDistribution dist = ComputeRibDistribution(index);
  EXPECT_EQ(dist.total_nodes, 11u);
  uint64_t total_edges = 0;
  for (size_t k = 0; k < dist.nodes_with_fanout.size(); ++k) {
    total_edges += dist.nodes_with_fanout[k] * (k + 1);
  }
  EXPECT_EQ(total_edges, index.rib_count() + index.extrib_count());
  EXPECT_GT(dist.FractionWithEdges(), 0.0);
  EXPECT_LT(dist.FractionWithEdges(), 1.0);
  EXPECT_EQ(dist.FractionWithFanout(0), 0.0);       // k = 0 is invalid
  EXPECT_EQ(dist.FractionWithFanout(100), 0.0);     // beyond max fanout
}

TEST(SpineStatsTest, RibDistributionAgreesWithCompactFanouts) {
  seq::GeneratorOptions options;
  options.length = 20000;
  options.seed = 13;
  std::string s = seq::GenerateSequence(Alphabet::Dna(), options);
  SpineIndex reference(Alphabet::Dna());
  ASSERT_TRUE(reference.AppendString(s).ok());
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(s).ok());

  RibDistribution dist = ComputeRibDistribution(reference);
  auto counts = compact.FanoutCountsWithExtribs();
  for (uint32_t k = 1; k <= 4; ++k) {
    uint64_t reference_count = k <= dist.nodes_with_fanout.size()
                                   ? dist.nodes_with_fanout[k - 1]
                                   : 0;
    EXPECT_EQ(reference_count, counts[k - 1]) << "fanout " << k;
  }
}

TEST(SpineStatsTest, LinkHistogramSumsToHundred) {
  seq::GeneratorOptions options;
  options.length = 50000;
  options.seed = 21;
  std::string s = seq::GenerateSequence(Alphabet::Dna(), options);
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(s).ok());
  std::vector<double> histogram = ComputeLinkDestinationHistogram(index, 10);
  ASSERT_EQ(histogram.size(), 10u);
  double total = std::accumulate(histogram.begin(), histogram.end(), 0.0);
  EXPECT_NEAR(total, 100.0, 0.01);
  // The Figure 8 claim: the top of the backbone receives the most links.
  EXPECT_GT(histogram[0], histogram[9]);
}

TEST(SpineStatsTest, HistogramTemplateMatchesReferenceVersion) {
  std::string s = "ACCACAACAGGTTACCACA";
  SpineIndex reference(Alphabet::Dna());
  ASSERT_TRUE(reference.AppendString(s).ok());
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(s).ok());
  EXPECT_EQ(ComputeLinkDestinationHistogram(reference, 5),
            ComputeLinkDestinationHistogramT(compact, 5));
}

TEST(SpineStatsTest, EmptyIndexEdgeCases) {
  SpineIndex index(Alphabet::Dna());
  LabelMaxima maxima = ComputeLabelMaxima(index);
  EXPECT_EQ(maxima.max_lel, 0u);
  RibDistribution dist = ComputeRibDistribution(index);
  EXPECT_EQ(dist.FractionWithEdges(), 0.0);
  std::vector<double> histogram = ComputeLinkDestinationHistogram(index, 4);
  for (double pct : histogram) EXPECT_EQ(pct, 0.0);
}

}  // namespace
}  // namespace spine
