// Tests for the alphabet and packed-string substrate.

#include "alphabet/alphabet.h"

#include <string>

#include <gtest/gtest.h>

#include "alphabet/packed_string.h"
#include "common/rng.h"

namespace spine {
namespace {

TEST(AlphabetTest, DnaBasics) {
  Alphabet dna = Alphabet::Dna();
  EXPECT_EQ(dna.size(), 4u);
  EXPECT_EQ(dna.bits_per_code(), 2u);
  EXPECT_EQ(dna.kind(), Alphabet::Kind::kDna);
  EXPECT_STREQ(dna.name(), "dna");
  for (char c : std::string("ACGT")) {
    Code code = dna.Encode(c);
    ASSERT_NE(code, kInvalidCode);
    EXPECT_EQ(dna.Decode(code), c);
  }
  // Case folding.
  EXPECT_EQ(dna.Encode('a'), dna.Encode('A'));
  EXPECT_EQ(dna.Encode('t'), dna.Encode('T'));
  // Out of alphabet.
  EXPECT_EQ(dna.Encode('N'), kInvalidCode);
  EXPECT_EQ(dna.Encode('$'), kInvalidCode);
}

TEST(AlphabetTest, ProteinBasics) {
  Alphabet protein = Alphabet::Protein();
  EXPECT_EQ(protein.size(), 20u);
  EXPECT_EQ(protein.bits_per_code(), 5u);
  EXPECT_NE(protein.Encode('W'), kInvalidCode);
  EXPECT_NE(protein.Encode('m'), kInvalidCode);
  // B, J, O, U, X, Z are not standard residues.
  for (char c : std::string("BJOUXZ")) {
    EXPECT_EQ(protein.Encode(c), kInvalidCode) << c;
  }
  // All 20 codes are distinct.
  std::set<Code> codes;
  for (char c : std::string("ACDEFGHIKLMNPQRSTVWY")) {
    codes.insert(protein.Encode(c));
  }
  EXPECT_EQ(codes.size(), 20u);
}

TEST(AlphabetTest, ByteCoversAllButTheSentinel) {
  Alphabet byte = Alphabet::Byte();
  EXPECT_EQ(byte.size(), 255u);
  EXPECT_EQ(byte.bits_per_code(), 8u);
  for (int c = 0; c < 255; ++c) {
    Code code = byte.Encode(static_cast<char>(c));
    EXPECT_EQ(code, static_cast<Code>(c));
    EXPECT_EQ(byte.Decode(code), static_cast<char>(c));
  }
  // 0xFF is reserved as the invalid sentinel.
  EXPECT_EQ(byte.Encode(static_cast<char>(0xff)), kInvalidCode);
}

TEST(AlphabetTest, AsciiCoversTextFitsCompactLimit) {
  Alphabet ascii = Alphabet::Ascii();
  EXPECT_LE(ascii.size(), 127u);  // fits the compact layout's 7-bit CL
  EXPECT_EQ(ascii.bits_per_code(), 7u);
  for (char c : std::string("Hello, World! 42\t\n")) {
    EXPECT_NE(ascii.Encode(c), kInvalidCode) << static_cast<int>(c);
  }
  EXPECT_EQ(ascii.Encode(static_cast<char>(0x01)), kInvalidCode);
  EXPECT_EQ(ascii.Encode(static_cast<char>(0x80)), kInvalidCode);
  // Codes are distinct and decode back.
  Code code = ascii.Encode('q');
  EXPECT_EQ(ascii.Decode(code), 'q');
}

TEST(AlphabetTest, EncodeString) {
  Alphabet dna = Alphabet::Dna();
  std::string codes;
  Status status = dna.EncodeString("ACgt", &codes);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(codes.size(), 4u);
  status = dna.EncodeString("ACXT", &codes);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("offset 2"), std::string::npos);
}

class PackedStringTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PackedStringTest, RoundTripsRandomCodes) {
  const uint32_t bits = GetParam();
  PackedString packed(bits);
  Rng rng(bits * 17);
  std::vector<Code> expected;
  for (int i = 0; i < 5000; ++i) {
    Code code = static_cast<Code>(rng.Below(1ull << bits));
    expected.push_back(code);
    packed.Append(code);
    ASSERT_EQ(packed.size(), static_cast<uint64_t>(i + 1));
  }
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(packed.Get(i), expected[i]) << "bits " << bits << " at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackedStringTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 8u),
                         [](const auto& info) {
                           return "bits" + std::to_string(info.param);
                         });

TEST(PackedStringDetail, MemoryIsBitPacked) {
  PackedString packed(2);
  for (int i = 0; i < 32000; ++i) packed.Append(static_cast<Code>(i & 3));
  // 32000 2-bit codes = 8000 bytes; allow vector growth slack.
  EXPECT_LE(packed.MemoryBytes(), 16000u);
}

TEST(PackedStringDetail, RestoreFromWords) {
  PackedString a(5);
  for (int i = 0; i < 1000; ++i) a.Append(static_cast<Code>(i % 20));
  PackedString b(5);
  b.RestoreFromWords(a.words(), a.size());
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(b.Get(i), a.Get(i));
}

}  // namespace
}  // namespace spine
