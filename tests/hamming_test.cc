// Tests for the k-mismatch (Hamming) DFS search and the classical
// substring utilities (longest repeated / longest common substring),
// plus the tie between the align-module search and the core
// kMismatch query kind: same corpora (tests/test_util.h), same
// answers, and the approx.* / core.* registry counters move exactly
// with the SearchStats the queries report.

#include "align/hamming.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compact/compact_spine.h"
#include "core/query.h"
#include "core/spine_index.h"
#include "seq/generator.h"
#include "test_util.h"

namespace spine::align {
namespace {

using spine::test::RandomString;
using spine::test::RegistryDelta;
using spine::test::TestCorpus;

std::vector<HammingHit> BruteHamming(const std::string& text,
                                     const std::string& pattern,
                                     uint32_t max_mismatches) {
  std::vector<HammingHit> hits;
  if (pattern.empty() || text.size() < pattern.size()) return hits;
  for (uint32_t s = 0; s + pattern.size() <= text.size(); ++s) {
    uint32_t mm = 0;
    for (uint32_t k = 0; k < pattern.size() && mm <= max_mismatches; ++k) {
      if (text[s + k] != pattern[k]) ++mm;
    }
    if (mm <= max_mismatches) hits.push_back({s, mm});
  }
  return hits;
}

TEST(HammingTest, ExactEqualsZeroMismatch) {
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("ACGTACGTAC").ok());
  auto hits = FindHammingMatches(index, "GTAC", 0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (HammingHit{2, 0}));
  EXPECT_EQ(hits[1], (HammingHit{6, 0}));
}

TEST(HammingTest, OneMismatchFindsVariants) {
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("AAAATCGAAAA").ok());
  // "TGGA" vs the text: "TCGA" at 4 differs only at offset 1.
  auto hits = FindHammingMatches(index, "TGGA", 1);
  bool found = false;
  for (const auto& hit : hits) {
    if (hit.data_pos == 4) {
      found = true;
      EXPECT_EQ(hit.mismatches, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(HammingTest, DegenerateInputs) {
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("ACG").ok());
  EXPECT_TRUE(FindHammingMatches(index, "", 1).empty());
  EXPECT_TRUE(FindHammingMatches(index, "ACGT", 1).empty());  // longer than n
  CompactSpineIndex empty(Alphabet::Dna());
  EXPECT_TRUE(FindHammingMatches(empty, "A", 0).empty());
}

TEST(HammingTest, MatchesBruteForceOracle) {
  Rng rng(2718);
  for (int round = 0; round < 40; ++round) {
    uint32_t n = 20 + static_cast<uint32_t>(rng.Below(200));
    uint32_t sigma = 2 + static_cast<uint32_t>(rng.Below(3));
    const std::string text = RandomString(rng, n, sigma);
    CompactSpineIndex index(Alphabet::Dna());
    ASSERT_TRUE(index.AppendString(text).ok());
    for (int trial = 0; trial < 6; ++trial) {
      uint32_t m = 3 + static_cast<uint32_t>(rng.Below(8));
      if (m > n) continue;
      const std::string pattern = RandomString(rng, m, sigma);
      uint32_t k = static_cast<uint32_t>(rng.Below(3));
      ASSERT_EQ(FindHammingMatches(index, pattern, k),
                BruteHamming(text, pattern, k))
          << "text=" << text << " pattern=" << pattern << " k=" << k;
    }
  }
}

// The DFS search and the core kMismatch kind (seed-and-extend through
// ExecuteQuery) answer from the same structure and must agree hit for
// hit — and the query path must leave an exact trail in the metrics
// registry: one routing decision per query, one approx.verified per
// hit, and Table-6 work counters equal to the summed SearchStats.
TEST(HammingTest, AgreesWithCoreMismatchKindAndRecordsMetrics) {
  Rng rng(4242);
  const std::string corpus = TestCorpus(6000, 11);
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(corpus).ok());

  RegistryDelta delta;
  SearchStats expected;
  uint64_t queries = 0;
  uint64_t total_hits = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t m = 10 + static_cast<uint32_t>(rng.Below(10));
    const uint32_t start =
        static_cast<uint32_t>(rng.Below(corpus.size() - m));
    std::string pattern = corpus.substr(start, m);
    const uint32_t k = static_cast<uint32_t>(rng.Below(3));
    // Perturb up to k characters so inexact hits actually occur.
    for (uint32_t e = 0; e < k; ++e) {
      pattern[rng.Below(m)] = "ACGT"[rng.Below(4)];
    }

    QueryResult result = ExecuteQuery(index, Query::Mismatch(pattern, k));
    ASSERT_TRUE(result.ok()) << result.error;
    expected.Add(result.stats);
    ++queries;
    total_hits += result.hits.size();

    const std::vector<HammingHit> dfs = FindHammingMatches(index, pattern, k);
    ASSERT_EQ(result.hits.size(), dfs.size()) << "k=" << k;
    for (size_t i = 0; i < dfs.size(); ++i) {
      EXPECT_EQ(result.hits[i].pos, dfs[i].data_pos);
      EXPECT_EQ(result.hits[i].length, pattern.size());
      EXPECT_EQ(result.hits[i].query_pos, dfs[i].mismatches);
    }
  }
  EXPECT_GT(total_hits, 0u);

  SPINE_SKIP_IF_OBS_DISABLED();
  // FindHammingMatches is not a query: only the ExecuteQuery half of
  // the loop shows up in the registry.
  EXPECT_EQ(delta.Counter("core.queries.mismatch"), queries);
  EXPECT_EQ(delta.Counter("approx.seeded") + delta.Counter("approx.scanned"),
            queries);
  EXPECT_EQ(delta.Counter("approx.verified"), total_hits);
  EXPECT_GE(delta.Counter("approx.candidates"),
            delta.Counter("approx.verified"));
  EXPECT_EQ(delta.Counter("core.vertebra_steps"), expected.nodes_checked);
  EXPECT_GT(expected.nodes_checked, 0u);
}

TEST(UtilitiesTest, LongestRepeatedSubstring) {
  // "BANANA"-style repeat over DNA: "ACGTACGT" -> "ACGT" repeats.
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("ACGTACGTTT").ok());
  RepeatedSubstring lrs = LongestRepeatedSubstring(index);
  EXPECT_EQ(lrs.length, 4u);  // "ACGT"
  EXPECT_EQ(lrs.first_end, 4u);
  // No repeats at all.
  SpineIndex unique(Alphabet::Dna());
  ASSERT_TRUE(unique.AppendString("ACGT").ok());
  EXPECT_EQ(LongestRepeatedSubstring(unique).length, 0u);
}

TEST(UtilitiesTest, LongestRepeatedSubstringOracle) {
  Rng rng(31);
  for (int round = 0; round < 40; ++round) {
    uint32_t n = 5 + static_cast<uint32_t>(rng.Below(80));
    const std::string s = RandomString(rng, n, 2);
    SpineIndex index(Alphabet::Dna());
    ASSERT_TRUE(index.AppendString(s).ok());
    // Brute force: longest substring with >= 2 occurrences.
    uint32_t best = 0;
    for (uint32_t start = 0; start < n; ++start) {
      for (uint32_t len = best + 1; start + len <= n; ++len) {
        if (s.find(s.substr(start, len), start + 1) != std::string::npos) {
          best = std::max(best, len);
        } else {
          break;
        }
      }
    }
    ASSERT_EQ(LongestRepeatedSubstring(index).length, best) << s;
  }
}

TEST(UtilitiesTest, LongestCommonSubstring) {
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("TTTACGTACCCC").ok());
  MaximalMatch lcs = LongestCommonSubstring(index, "GGACGTAGG");
  EXPECT_EQ(lcs.length, 5u);  // "ACGTA"
  EXPECT_EQ(lcs.query_pos, 2u);
  EXPECT_EQ(lcs.first_end, 8u);
  // Disjoint alphabets share nothing.
  MaximalMatch none = LongestCommonSubstring(index, "GGGGG");
  EXPECT_LE(none.length, 1u);
}

}  // namespace
}  // namespace spine::align
