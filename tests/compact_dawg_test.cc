// Tests for the CDAWG (compacted DAWG, the paper's Section 7 ~22 B/char
// comparator).

#include "dawg/compact_dawg.h"

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "seq/generator.h"

namespace spine {
namespace {

TEST(CompactDawgTest, EmptyAndBasics) {
  Result<CompactDawg> empty = CompactDawg::Build(Alphabet::Dna(), "");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->Contains(""));
  EXPECT_FALSE(empty->Contains("A"));
  EXPECT_TRUE(empty->Validate().ok());

  Result<CompactDawg> cdawg =
      CompactDawg::Build(Alphabet::Dna(), "ACCACAACA");
  ASSERT_TRUE(cdawg.ok());
  EXPECT_TRUE(cdawg->Contains("CCAC"));
  EXPECT_TRUE(cdawg->Contains("ACCACAACA"));
  EXPECT_FALSE(cdawg->Contains("ACCAA"));
  EXPECT_FALSE(cdawg->Contains("G"));
  EXPECT_FALSE(cdawg->Contains("ACCACAACAA"));
  EXPECT_TRUE(cdawg->Validate().ok());
}

TEST(CompactDawgTest, RejectsBadAlphabet) {
  EXPECT_FALSE(CompactDawg::Build(Alphabet::Dna(), "ACGX").ok());
}

TEST(CompactDawgTest, CompactionReducesNodesBelowTheAutomaton) {
  Rng rng(11);
  const char* letters = "ACGT";
  std::string s;
  for (int i = 0; i < 5000; ++i) s.push_back(letters[rng.Below(4)]);
  SuffixAutomaton automaton(Alphabet::Dna());
  ASSERT_TRUE(automaton.AppendString(s).ok());
  Result<CompactDawg> cdawg = CompactDawg::Build(Alphabet::Dna(), s);
  ASSERT_TRUE(cdawg.ok());
  EXPECT_LT(cdawg->node_count(), automaton.state_count() / 2);
  EXPECT_LT(cdawg->edge_count(), automaton.transition_count());
  EXPECT_TRUE(cdawg->Validate().ok());
}

TEST(CompactDawgTest, ContainsOracleSweep) {
  Rng rng(606);
  const char* letters = "ACGT";
  for (int round = 0; round < 60; ++round) {
    uint32_t sigma = 2 + static_cast<uint32_t>(rng.Below(3));
    uint32_t n = 4 + static_cast<uint32_t>(rng.Below(150));
    std::string s;
    for (uint32_t i = 0; i < n; ++i) s.push_back(letters[rng.Below(sigma)]);
    Result<CompactDawg> cdawg = CompactDawg::Build(Alphabet::Dna(), s);
    ASSERT_TRUE(cdawg.ok());
    ASSERT_TRUE(cdawg->Validate().ok()) << s;
    // Exhaustive substrings + random probes.
    for (uint32_t start = 0; start < n; ++start) {
      for (uint32_t len = 1; start + len <= n && len <= 20; ++len) {
        ASSERT_TRUE(cdawg->Contains(std::string_view(s).substr(start, len)))
            << s;
      }
    }
    for (int trial = 0; trial < 60; ++trial) {
      std::string pattern;
      for (uint32_t i = 0; i < 1 + rng.Below(10); ++i) {
        pattern.push_back(letters[rng.Below(sigma)]);
      }
      ASSERT_EQ(cdawg->Contains(pattern),
                s.find(pattern) != std::string::npos)
          << "s=" << s << " pattern=" << pattern;
    }
  }
}

TEST(CompactDawgTest, SpaceIsInTheTwentyTwoBytesClass) {
  seq::GeneratorOptions gen;
  gen.length = 100'000;
  gen.seed = 12;
  gen.repeat_fraction = 0.05;
  gen.mean_repeat_len = 500;
  std::string s = seq::GenerateSequence(Alphabet::Dna(), gen);
  Result<CompactDawg> cdawg = CompactDawg::Build(Alphabet::Dna(), s);
  ASSERT_TRUE(cdawg.ok());
  double bpc = static_cast<double>(cdawg->MemoryBytes()) /
               static_cast<double>(s.size());
  // Paper (Section 7): CDAWGs take "more than 22 bytes per indexed
  // character" — far below the plain DAWG, above SPINE.
  EXPECT_GT(bpc, 12.0) << bpc;
  EXPECT_LT(bpc, 30.0) << bpc;
}

}  // namespace
}  // namespace spine
