// Tests for the suffix-array baseline.

#include "suffix_array/suffix_array.h"

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "naive/naive_index.h"

namespace spine {
namespace {

TEST(SuffixArrayTest, EmptyString) {
  Result<SuffixArray> sa = SuffixArray::Build(Alphabet::Dna(), "");
  ASSERT_TRUE(sa.ok());
  EXPECT_EQ(sa->size(), 0u);
  EXPECT_FALSE(sa->Contains("a"));
}

TEST(SuffixArrayTest, RejectsForeignCharacters) {
  EXPECT_FALSE(SuffixArray::Build(Alphabet::Dna(), "ACGX").ok());
}

TEST(SuffixArrayTest, SortedOrder) {
  Result<SuffixArray> sa = SuffixArray::Build(Alphabet::Dna(), "ACGTACGT");
  ASSERT_TRUE(sa.ok());
  // Adjacent suffixes must be lexicographically non-decreasing; verify
  // via LCP consistency: lcp[i] characters agree, the next differs.
  const auto& order = sa->sa();
  for (size_t i = 1; i < order.size(); ++i) {
    std::string a = std::string("ACGTACGT").substr(order[i - 1]);
    std::string b = std::string("ACGTACGT").substr(order[i]);
    EXPECT_LE(a, b);
    size_t common = 0;
    while (common < a.size() && common < b.size() && a[common] == b[common])
      ++common;
    EXPECT_EQ(sa->lcp()[i], common);
  }
}

TEST(SuffixArrayTest, FindAllMatchesBruteForce) {
  Rng rng(12345);
  const char* letters = "ACGT";
  for (int round = 0; round < 60; ++round) {
    uint32_t sigma = 2 + static_cast<uint32_t>(rng.Below(3));
    uint32_t len = 4 + static_cast<uint32_t>(rng.Below(150));
    std::string s;
    for (uint32_t i = 0; i < len; ++i) s.push_back(letters[rng.Below(sigma)]);
    Result<SuffixArray> sa = SuffixArray::Build(Alphabet::Dna(), s);
    ASSERT_TRUE(sa.ok());
    for (int trial = 0; trial < 60; ++trial) {
      std::string pattern;
      if (trial % 2 == 0) {
        uint32_t start = static_cast<uint32_t>(rng.Below(len));
        pattern = s.substr(start, 1 + rng.Below(10));
      } else {
        for (uint32_t i = 0; i < 1 + rng.Below(6); ++i) {
          pattern.push_back(letters[rng.Below(sigma)]);
        }
      }
      ASSERT_EQ(sa->FindAll(pattern), naive::FindAllOccurrences(s, pattern))
          << "string " << s << " pattern " << pattern;
    }
  }
}

TEST(SuffixArrayTest, MemoryIsAboutEightBytesPerCharPlusText) {
  std::string s(10000, 'A');
  for (size_t i = 0; i < s.size(); i += 3) s[i] = 'C';
  Result<SuffixArray> sa = SuffixArray::Build(Alphabet::Dna(), s);
  ASSERT_TRUE(sa.ok());
  double per_char =
      static_cast<double>(sa->MemoryBytes()) / static_cast<double>(s.size());
  // 4 (SA) + 4 (LCP) + 1 (text byte codes) = 9, modulo vector slack.
  EXPECT_GE(per_char, 8.0);
  EXPECT_LE(per_char, 12.0);
}

}  // namespace
}  // namespace spine
