// Tests for the observability layer: metrics registry semantics, JSON
// emit/parse round trips, per-query tracing, and the compile-time
// disabled guard (obs_disabled_guard.cc). The concurrency tests run
// under the TSan CI job.

#include "obs/metrics.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/thread_pool.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "obs_disabled_guard.h"

namespace spine::obs {
namespace {

TEST(CounterTest, MonotonicAccumulation) {
  Registry registry;
  Counter& counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  // Same name resolves to the same metric.
  registry.GetCounter("test.counter").Add(8);
  EXPECT_EQ(counter.value(), 50u);
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    counter.Add(static_cast<uint64_t>(i % 3));
    EXPECT_GE(counter.value(), last);
    last = counter.value();
  }
}

TEST(GaugeTest, MovesBothWays) {
  Registry registry;
  Gauge& gauge = registry.GetGauge("test.gauge");
  gauge.Set(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.Add(-25);
  EXPECT_EQ(gauge.value(), -15);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i counts observations <= bounds[i] (first matching bucket);
  // everything past the last bound lands in the overflow bucket.
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // <= 1       -> bucket 0
  histogram.Observe(1.0);    // == bound 0 -> bucket 0 (inclusive)
  histogram.Observe(1.0001); //            -> bucket 1
  histogram.Observe(10.0);   // == bound 1 -> bucket 1
  histogram.Observe(99.9);   //            -> bucket 2
  histogram.Observe(100.0);  // == bound 2 -> bucket 2
  histogram.Observe(100.1);  //            -> overflow
  histogram.Observe(1e12);   //            -> overflow
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(1), 2u);
  EXPECT_EQ(histogram.bucket_count(2), 2u);
  EXPECT_EQ(histogram.bucket_count(3), 2u);
  EXPECT_EQ(histogram.count(), 8u);
  EXPECT_NEAR(histogram.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 +
                                   100.1 + 1e12,
              1e-3);
}

TEST(HistogramTest, ExponentialBoundsShape) {
  std::vector<double> bounds = Histogram::ExponentialBounds(1.0, 4.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[4], 256.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(RegistryTest, FirstHistogramRegistrationWins) {
  Registry registry;
  Histogram& first = registry.GetHistogram("test.h", {1.0, 2.0});
  Histogram& again = registry.GetHistogram("test.h", {5.0, 6.0, 7.0});
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotCopiesValues) {
  Registry registry;
  registry.GetCounter("c.one").Add(7);
  registry.GetGauge("g.one").Set(-3);
  registry.GetHistogram("h.one", {1.0, 2.0}).Observe(1.5);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("c.one"), 7u);
  EXPECT_EQ(snapshot.counter("c.absent"), 0u);
  EXPECT_EQ(snapshot.gauges.at("g.one"), -3);
  const MetricsSnapshot::HistogramValue& h = snapshot.histograms.at("h.one");
  EXPECT_EQ(h.count, 1u);
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[1], 1u);
  // Snapshot is a copy: later updates don't retroactively change it.
  registry.GetCounter("c.one").Add(100);
  EXPECT_EQ(snapshot.counter("c.one"), 7u);
}

// Snapshot-while-updating: workers hammer one counter and one histogram
// through the work-stealing pool while the main thread takes snapshots.
// TSan verifies the absence of data races; the value checks verify no
// update is lost and snapshots are monotone in time.
TEST(RegistryTest, ConcurrentUpdatesAndSnapshots) {
  Registry registry;
  Counter& counter = registry.GetCounter("tsan.counter");
  Histogram& histogram = registry.GetHistogram("tsan.hist", {10.0, 100.0});
  constexpr int kTasks = 16;
  constexpr int kPerTask = 2'000;
  {
    engine::ThreadPool pool(4);
    std::atomic<bool> done{false};
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([&counter, &histogram] {
        for (int i = 0; i < kPerTask; ++i) {
          counter.Add(1);
          histogram.Observe(static_cast<double>(i % 200));
        }
      });
    }
    uint64_t last_seen = 0;
    while (!done.load(std::memory_order_relaxed)) {
      MetricsSnapshot snapshot = registry.Snapshot();
      const uint64_t seen = snapshot.counter("tsan.counter");
      EXPECT_GE(seen, last_seen);
      EXPECT_LE(seen, static_cast<uint64_t>(kTasks) * kPerTask);
      last_seen = seen;
      if (seen == static_cast<uint64_t>(kTasks) * kPerTask) {
        done.store(true, std::memory_order_relaxed);
      }
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kTasks) * kPerTask);
  EXPECT_EQ(histogram.count(), static_cast<uint64_t>(kTasks) * kPerTask);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < 3; ++i) bucket_total += histogram.bucket_count(i);
  EXPECT_EQ(bucket_total, histogram.count());
}

// Concurrent GetCounter on the same and different names must neither
// race nor produce duplicate metrics.
TEST(RegistryTest, ConcurrentRegistration) {
  Registry registry;
  {
    engine::ThreadPool pool(4);
    for (int t = 0; t < 16; ++t) {
      pool.Submit([&registry, t] {
        for (int i = 0; i < 200; ++i) {
          registry.GetCounter("shared.name").Add(1);
          registry.GetCounter("name." + std::to_string(i % 10)).Add(1);
          (void)t;
        }
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(registry.metric_count(), 11u);
  EXPECT_EQ(registry.Snapshot().counter("shared.name"), 16u * 200u);
}

// --- JSON round trips -------------------------------------------------------

TEST(JsonTest, WriterEscapesAndParserInverts) {
  JsonWriter json;
  json.BeginObject();
  json.Key("text");
  json.Value(std::string_view("a\"b\\c\nd\te\x01f"));
  json.Key("num");
  json.Value(0.1);
  json.Key("neg");
  json.Value(static_cast<int64_t>(-12));
  json.Key("big");
  json.Value(static_cast<uint64_t>(1) << 60);
  json.Key("flag");
  json.Value(true);
  json.Key("nothing");
  json.Null();
  json.Key("arr");
  json.BeginArray();
  json.Value(static_cast<uint64_t>(1));
  json.Value(static_cast<uint64_t>(2));
  json.EndArray();
  json.EndObject();
  const std::string doc = std::move(json).Finish();

  Result<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->Find("text")->string_value, "a\"b\\c\nd\te\x01f");
  EXPECT_DOUBLE_EQ(parsed->Find("num")->number, 0.1);
  EXPECT_DOUBLE_EQ(parsed->Find("neg")->number, -12.0);
  EXPECT_DOUBLE_EQ(parsed->Find("big")->number,
                   static_cast<double>(uint64_t{1} << 60));
  EXPECT_TRUE(parsed->Find("flag")->bool_value);
  EXPECT_EQ(parsed->Find("nothing")->kind, JsonValue::Kind::kNull);
  ASSERT_TRUE(parsed->Find("arr")->is_array());
  EXPECT_EQ(parsed->Find("arr")->array.size(), 2u);
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(JsonTest, NonFiniteBecomesNull) {
  JsonWriter json;
  json.BeginObject();
  json.Key("inf");
  json.Value(std::numeric_limits<double>::infinity());
  json.Key("nan");
  json.Value(std::nan(""));
  json.EndObject();
  const std::string doc = std::move(json).Finish();
  Result<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("inf")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(parsed->Find("nan")->kind, JsonValue::Kind::kNull);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated",
        "{\"a\":1}trailing", "{'single':1}", "{\"a\" 1}"}) {
    Result<JsonValue> parsed = ParseJson(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(JsonTest, RegistrySnapshotRoundTripsThroughParser) {
  Registry registry;
  registry.GetCounter("a.hits").Add(3);
  registry.GetGauge("a.level").Set(-7);
  Histogram& h = registry.GetHistogram("a.lat", {1.0, 8.0});
  h.Observe(0.5);
  h.Observe(3.0);
  h.Observe(1e9);

  const std::string doc = Registry::ToJson(registry.Snapshot());
  Result<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << doc;
  EXPECT_DOUBLE_EQ(parsed->Find("counters")->Find("a.hits")->number, 3.0);
  EXPECT_DOUBLE_EQ(parsed->Find("gauges")->Find("a.level")->number, -7.0);
  const JsonValue* hist = parsed->Find("histograms")->Find("a.lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 3.0);
  const JsonValue* buckets = hist->Find("buckets");
  ASSERT_TRUE(buckets->is_array());
  ASSERT_EQ(buckets->array.size(), 3u);  // 2 bounds + overflow
  EXPECT_DOUBLE_EQ(buckets->array[0].Find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(buckets->array[1].Find("count")->number, 1.0);
  // Overflow bucket has "le":"+inf" and the 1e9 observation.
  EXPECT_EQ(buckets->array[2].Find("le")->string_value, "+inf");
  EXPECT_DOUBLE_EQ(buckets->array[2].Find("count")->number, 1.0);
}

// --- TraceContext -----------------------------------------------------------

TEST(TraceTest, SpansAndNotes) {
  TraceContext trace;
  trace.RecordSpan("exec_us", 12.5);
  trace.Note("retries", 2);
  {
    SpanTimer timer(&trace, "scoped_us");
  }
  EXPECT_DOUBLE_EQ(trace.SpanMicros("exec_us"), 12.5);
  EXPECT_GE(trace.SpanMicros("scoped_us"), 0.0);
  EXPECT_DOUBLE_EQ(trace.SpanMicros("absent"), -1.0);
  EXPECT_EQ(trace.NoteValue("retries"), 2u);
  EXPECT_EQ(trace.NoteValue("absent", 99), 99u);

  Result<JsonValue> parsed = ParseJson(trace.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->Find("spans")->Find("exec_us")->number, 12.5);
  EXPECT_DOUBLE_EQ(parsed->Find("notes")->Find("retries")->number, 2.0);
}

TEST(TraceTest, NullContextTimerIsInert) {
  SpanTimer timer(nullptr, "never");  // must not crash or record
}

// --- Compile-time disable guard ---------------------------------------------

// obs_disabled_guard.cc is compiled with SPINE_OBS_DISABLED defined, so
// every macro it fires must be a no-op: no registrations in the default
// registry, no counter increments.
TEST(DisabledGuardTest, MacrosCompileToNothing) {
  Registry& registry = Registry::Default();
  const size_t added = obs_test::FireDisabledMacros(registry);
  EXPECT_EQ(added, 0u);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.count("disabled_guard.counter"), 0u);
  EXPECT_EQ(snapshot.gauges.count("disabled_guard.gauge"), 0u);
  EXPECT_EQ(snapshot.histograms.count("disabled_guard.histogram"), 0u);
  EXPECT_EQ(snapshot.histograms.count("disabled_guard.timer"), 0u);
}

#if !defined(SPINE_OBS_DISABLED)
// Sanity check of the guard itself: the same macros fired from an
// ENABLED TU do register, so the guard test is not vacuously true.
TEST(DisabledGuardTest, EnabledMacrosDoRegister) {
  const size_t before = Registry::Default().metric_count();
  SPINE_OBS_COUNT("obs_test.enabled_counter", 1);
  EXPECT_GT(Registry::Default().metric_count(), before);
  EXPECT_GE(Registry::Default().Snapshot().counter("obs_test.enabled_counter"),
            1u);
}
#endif

}  // namespace
}  // namespace spine::obs
