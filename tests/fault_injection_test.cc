// System-wide robustness contract under injected storage faults:
// whatever the fault schedule, every query either returns an answer
// identical to the in-memory oracle's or a clean per-query error —
// never a crash, never a silently wrong answer.
//
// The faults come from storage::FaultInjectingBackend (io_backend.h),
// slotted under PageFile via DiskSpine::Options::backend, so the whole
// real stack (page checksums, buffer-pool error latch, ExecuteQuery
// latch drain, engine retry) is exercised end to end.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <fstream>

#include "common/rng.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "core/adapters.h"
#include "core/query.h"
#include "engine/query_engine.h"
#include "storage/disk_spine.h"
#include "storage/io_backend.h"
#include "storage/mmap_region.h"
#include "storage/page_file.h"
#include "test_util.h"

namespace spine::storage {
namespace {

using FaultKind = FaultInjectingBackend::FaultKind;
using spine::test::RandomDna;
using spine::test::TempPath;

// A mixed bag of queries touching every kind.
std::vector<Query> MakeQueries(Rng& rng, const std::string& s, int count) {
  std::vector<Query> queries;
  for (int i = 0; i < count; ++i) {
    uint32_t start = static_cast<uint32_t>(rng.Below(s.size() - 12));
    std::string present = s.substr(start, 3 + rng.Below(9));
    switch (i % 4) {
      case 0:
        queries.push_back(Query::FindAll(present));
        break;
      case 1:
        queries.push_back(Query::Contains(present));
        break;
      case 2:
        queries.push_back(Query::MaximalMatches(RandomDna(rng, 40), 6));
        break;
      default:
        queries.push_back(Query::MatchingStats(RandomDna(rng, 24)));
        break;
    }
  }
  return queries;
}

// The contract every result must satisfy: oracle-identical or a clean
// I/O / corruption error.
::testing::AssertionResult CorrectOrCleanError(const QueryResult& got,
                                               const QueryResult& expected) {
  if (got.ok()) {
    if (got.SameAnswer(expected)) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "query reported success with a wrong answer";
  }
  if (got.status_code == StatusCode::kIoError ||
      got.status_code == StatusCode::kCorruption) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "unexpected error class: " << got.status().ToString();
}

// (a) >= 100 seeded randomized read-fault schedules over the query
// path. The index is built and flushed cleanly first, so the random
// faults (EIO, bit flips) land only on query-time page reads.
TEST(FaultInjectionTest, HundredRandomReadSchedulesNeverWrongNeverCrash) {
  Rng rng(4242);
  const std::string s = RandomDna(rng, 6000);
  CompactSpineIndex oracle(Alphabet::Dna());
  ASSERT_TRUE(oracle.AppendString(s).ok());

  FaultInjectingBackend backend;
  DiskSpine::Options options;
  options.pool_frames = 4;  // tiny pool: every query faults pages in
  options.backend = &backend;
  auto disk = DiskSpine::Create(Alphabet::Dna(), TempPath("fi_rand.idx"),
                                options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_TRUE((*disk)->AppendString(s).ok());
  ASSERT_TRUE((*disk)->Flush().ok());

  uint64_t clean_errors = 0, correct = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    backend.EnableRandomFaults(seed, /*rate=*/0.05);
    Rng qrng(seed * 977);
    for (const Query& query : MakeQueries(qrng, s, 4)) {
      QueryResult expected = ExecuteQuery(oracle, query);
      QueryResult got = ExecuteQuery(**disk, query);
      ASSERT_TRUE(CorrectOrCleanError(got, expected))
          << "seed " << seed << " pattern " << query.pattern;
      got.ok() ? ++correct : ++clean_errors;
    }
    backend.DisableRandomFaults();
  }
  // The harness actually fired, and the stack survived at least some
  // of the schedules (one-shot bit flips heal via the pool's re-read).
  EXPECT_GT(backend.faults_injected(), 0u);
  EXPECT_GT(clean_errors, 0u);
  EXPECT_GT(correct, 0u);
}

// (b) Randomized faults during *construction*: Append/Create either
// succeed or fail with a clean Status. When construction survives, the
// index must still answer correctly (or latch corruption cleanly if a
// torn write made it to the medium).
TEST(FaultInjectionTest, BuildUnderRandomFaultsFailsCleanly) {
  Rng rng(777);
  const std::string s = RandomDna(rng, 3000);
  CompactSpineIndex oracle(Alphabet::Dna());
  ASSERT_TRUE(oracle.AppendString(s).ok());

  uint64_t clean_failures = 0, survived = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    FaultInjectingBackend backend;
    // Grade the rate with the seed: a build issues hundreds of backend
    // ops, so a flat rate makes every build die. The low-rate seeds
    // mostly survive, the high-rate ones mostly fail — both arms of the
    // contract get exercised.
    backend.EnableRandomFaults(seed, /*rate=*/0.0002 * static_cast<double>(seed));
    DiskSpine::Options options;
    options.pool_frames = 8;  // eviction pressure -> writes during build
    options.backend = &backend;
    auto disk = DiskSpine::Create(
        Alphabet::Dna(), TempPath("fi_build" + std::to_string(seed) + ".idx"),
        options);
    if (!disk.ok()) {  // clean refusal at create time is a pass
      ++clean_failures;
      continue;
    }
    Status status = (*disk)->AppendString(s);
    if (!status.ok()) {
      EXPECT_TRUE(status.code() == StatusCode::kIoError ||
                  status.code() == StatusCode::kCorruption)
          << status.ToString();
      ++clean_failures;
      continue;
    }
    ++survived;
    // Quiesce the fault stream and spot-check answers.
    backend.DisableRandomFaults();
    Rng qrng(seed);
    for (const Query& query : MakeQueries(qrng, s, 4)) {
      QueryResult expected = ExecuteQuery(oracle, query);
      QueryResult got = ExecuteQuery(**disk, query);
      ASSERT_TRUE(CorrectOrCleanError(got, expected)) << "seed " << seed;
    }
  }
  EXPECT_GT(clean_failures, 0u);
  EXPECT_GT(survived, 0u);
}

// (c) A transient read EIO is healed by the engine's bounded retry:
// the batch reports success and counts the retry.
TEST(FaultInjectionTest, EngineRetryHealsTransientReadError) {
  Rng rng(11);
  const std::string s = RandomDna(rng, 4000);
  const std::string path = TempPath("fi_retry.idx");
  CompactSpineIndex oracle(Alphabet::Dna());
  ASSERT_TRUE(oracle.AppendString(s).ok());
  {
    DiskSpine::Options options;
    options.pool_frames = 64;
    auto disk = DiskSpine::Create(Alphabet::Dna(), path, options);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AppendString(s).ok());
    ASSERT_TRUE((*disk)->Checkpoint().ok());
  }

  FaultInjectingBackend backend;
  DiskSpine::Options options;
  options.pool_frames = 16;
  options.backend = &backend;
  auto disk = DiskSpine::Open(path, options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  // Fail the very next backend read with EIO; the retry re-reads fine.
  backend.ScheduleReadFault(FaultKind::kReadError, 1);

  engine::QueryEngine engine({.threads = 2,
                              .cache_bytes = 0,
                              .retry_limit = 2,
                              .retry_backoff_us = 0});
  std::string pattern = s.substr(100, 8);
  std::vector<Query> queries = {Query::FindAll(pattern)};
  core::DiskSpineAdapter adapter(**disk);
  engine::BatchStats stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(adapter, queries, &stats);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_TRUE(results[0].SameAnswer(ExecuteQuery(oracle, queries[0])));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(backend.faults_injected(), 1u);
}

// retry_limit = 0 really disables retries: a transient read fault that
// one retry would have healed (the default retry_limit of 2 does, see
// the test above) surfaces as kIoError with zero retries.
TEST(FaultInjectionTest, RetryLimitZeroDisablesRetries) {
  Rng rng(12);
  const std::string s = RandomDna(rng, 4000);
  const std::string path = TempPath("fi_retry_alias.idx");
  {
    DiskSpine::Options options;
    options.pool_frames = 64;
    auto disk = DiskSpine::Create(Alphabet::Dna(), path, options);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AppendString(s).ok());
    ASSERT_TRUE((*disk)->Checkpoint().ok());
  }

  FaultInjectingBackend backend;
  DiskSpine::Options options;
  options.pool_frames = 16;
  options.backend = &backend;
  auto disk = DiskSpine::Open(path, options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  backend.ScheduleReadFault(FaultKind::kReadError, 1);

  engine::QueryEngine::Options engine_options;
  engine_options.threads = 2;
  engine_options.retry_backoff_us = 0;
  engine_options.retry_limit = 0;
  engine::QueryEngine engine(engine_options);

  std::vector<Query> queries = {Query::FindAll(s.substr(100, 8))};
  core::DiskSpineAdapter adapter(**disk);
  engine::BatchStats stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(adapter, queries, &stats);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status_code, StatusCode::kIoError);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.failed, 1u);
}

// (d) Persistent on-disk corruption: every data page gets a bit flip,
// so each query that touches storage fails with kCorruption — but the
// batch itself completes, results arrive for every query, and the
// engine never retries corruption.
TEST(FaultInjectionTest, PersistentCorruptionFailsPerQueryNotPerBatch) {
  Rng rng(23);
  const std::string s = RandomDna(rng, 4000);
  const std::string path = TempPath("fi_corrupt.idx");
  uint64_t pages = 0;
  {
    DiskSpine::Options options;
    options.pool_frames = 64;
    auto disk = DiskSpine::Create(Alphabet::Dna(), path, options);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AppendString(s).ok());
    ASSERT_TRUE((*disk)->Checkpoint().ok());
    pages = (*disk)->PagesUsed();
  }
  ASSERT_GT(pages, 0u);
  {
    // Flip one payload bit in every logical page (physical page p + 1).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    for (uint64_t p = 0; p < pages; ++p) {
      const std::streamoff off =
          static_cast<std::streamoff>((p + 1) * kPageSize + kPageHeaderSize +
                                      17);
      f.seekg(off);
      char c = 0;
      f.read(&c, 1);
      c = static_cast<char>(c ^ 0x10);
      f.seekp(off);
      f.write(&c, 1);
    }
  }

  DiskSpine::Options options;
  options.pool_frames = 16;
  auto disk = DiskSpine::Open(path, options);
  // Open only parses the sidecar + superblock, so it still succeeds;
  // the rot is discovered by checksums on first page access.
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  Rng qrng(34);
  std::vector<Query> queries = MakeQueries(qrng, s, 8);
  engine::QueryEngine engine({.threads = 2,
                              .cache_bytes = 0,
                              .retry_limit = 2,
                              .retry_backoff_us = 0});
  core::DiskSpineAdapter adapter(**disk);
  engine::BatchStats stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(adapter, queries, &stats);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].ok()) << "query " << i;
    EXPECT_EQ(results[i].status_code, StatusCode::kCorruption) << "query " << i;
    EXPECT_FALSE(results[i].error.empty());
  }
  EXPECT_EQ(stats.failed, queries.size());
  EXPECT_EQ(stats.retries, 0u);  // corruption is never retried
}

// (e) A torn page write (prefix persisted, success reported) is caught
// by the page checksum on the next read of that page.
TEST(FaultInjectionTest, TornPageDetectedAfterReopen) {
  const std::string path = TempPath("fi_torn.dat");
  FaultInjectingBackend backend;
  {
    Result<PageFile> file =
        PageFile::Create(path, PageFile::SyncMode::kNone, &backend);
    ASSERT_TRUE(file.ok());
    uint8_t page[kPageSize];
    for (uint32_t i = 0; i < kPageSize; ++i) {
      page[i] = static_cast<uint8_t>(i * 7 + 1);  // dense, no zero tail
    }
    SealPageChecksum(0, page);
    backend.ScheduleWriteFault(FaultKind::kTornPage, 1);
    // The torn write reports success, so the writer cannot see it.
    ASSERT_TRUE(file->WritePage(0, page).ok());
    ASSERT_GE(backend.faults_injected(), 1u);
    // A later page lands intact, extending the file past the torn one —
    // the tear is invisible to the open-time size cross-check and only
    // the per-page checksum can catch it.
    SealPageChecksum(1, page);
    ASSERT_TRUE(file->WritePage(1, page).ok());
    // Persist the superblock so the reopen sees both pages.
    ASSERT_TRUE(file->Sync().ok());
  }
  Result<PageFile> reopened = PageFile::Open(path, PageFile::SyncMode::kNone);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  uint8_t raw[kPageSize];
  ASSERT_TRUE(reopened->ReadPage(0, raw).ok());
  Status verify = VerifyPageChecksum(0, raw);
  ASSERT_FALSE(verify.ok());
  EXPECT_EQ(verify.code(), StatusCode::kCorruption);
  // The neighbouring intact page still verifies.
  ASSERT_TRUE(reopened->ReadPage(1, raw).ok());
  EXPECT_TRUE(VerifyPageChecksum(1, raw).ok());
  // And the pool refuses to serve the page (re-read does not help:
  // the torn bytes are really on the medium).
  BufferPool pool(&*reopened, 4, ReplacementPolicy::kLru);
  EXPECT_EQ(pool.FetchPage(0, false), nullptr);
  EXPECT_EQ(pool.ConsumeError().code(), StatusCode::kCorruption);
}

// (f) Short writes and sync failures surface as kIoError from
// Checkpoint instead of aborting.
TEST(FaultInjectionTest, ShortWriteAndSyncFaultSurfaceIoError) {
  Rng rng(5);
  const std::string s = RandomDna(rng, 1500);

  {
    FaultInjectingBackend backend;
    DiskSpine::Options options;
    options.pool_frames = 4096;  // no writes until Checkpoint
    options.backend = &backend;
    auto disk = DiskSpine::Create(Alphabet::Dna(),
                                  TempPath("fi_short.idx"), options);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AppendString(s).ok());
    backend.ScheduleWriteFault(FaultKind::kShortWrite, 1);
    Status status = (*disk)->Checkpoint();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    // The latch (if any) drains and a clean retry succeeds.
    (void)(*disk)->ConsumeError();
    EXPECT_TRUE((*disk)->Checkpoint().ok());
  }
  {
    FaultInjectingBackend backend;
    DiskSpine::Options options;
    options.pool_frames = 4096;
    options.backend = &backend;
    auto disk = DiskSpine::Create(Alphabet::Dna(),
                                  TempPath("fi_sync.idx"), options);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AppendString(s).ok());
    backend.ScheduleSyncFault(1);
    Status status = (*disk)->Checkpoint();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    (void)(*disk)->ConsumeError();
    EXPECT_TRUE((*disk)->Checkpoint().ok());
  }
}

// A write EIO under eviction pressure surfaces from Append itself.
TEST(FaultInjectionTest, WriteErrorDuringBuildSurfacesFromAppend) {
  Rng rng(6);
  const std::string s = RandomDna(rng, 20000);
  FaultInjectingBackend backend;
  DiskSpine::Options options;
  options.pool_frames = 4;  // constant dirty writebacks
  options.backend = &backend;
  auto disk = DiskSpine::Create(Alphabet::Dna(),
                                TempPath("fi_weio.idx"), options);
  ASSERT_TRUE(disk.ok());
  backend.ScheduleWriteFault(FaultKind::kWriteError, 1);
  Status status = (*disk)->AppendString(s);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(backend.faults_injected(), 1u);
}

// VerifyStructure passes on a healthy index and reports corruption on
// a bit-flipped one (the `spine verify` building block).
TEST(FaultInjectionTest, VerifyStructureHealthyAndCorrupt) {
  Rng rng(88);
  const std::string s = RandomDna(rng, 3000);
  const std::string path = TempPath("fi_verify.idx");
  uint64_t pages = 0;
  {
    DiskSpine::Options options;
    options.pool_frames = 64;
    auto disk = DiskSpine::Create(Alphabet::Dna(), path, options);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AppendString(s).ok());
    ASSERT_TRUE((*disk)->Checkpoint().ok());
    pages = (*disk)->PagesUsed();
    Status healthy = (*disk)->VerifyStructure();
    EXPECT_TRUE(healthy.ok()) << healthy.ToString();
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    const std::streamoff off =
        static_cast<std::streamoff>((pages / 2 + 1) * kPageSize +
                                    kPageHeaderSize + 5);
    f.seekg(off);
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x20);
    f.seekp(off);
    f.write(&c, 1);
  }
  DiskSpine::Options options;
  options.pool_frames = 16;
  auto disk = DiskSpine::Open(path, options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  Status verdict = (*disk)->VerifyStructure();
  if (verdict.ok()) verdict = (*disk)->ConsumeError();
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), StatusCode::kCorruption);
}

// --- zero-copy mmap backend under faults (PR 8) -----------------------------

// The same 100-seed read-fault contract holds when the paged stack
// runs over the zero-copy mmap backend: FaultInjectingBackend wraps
// MmapIoBackend exactly as it wraps the POSIX one, and every query
// still ends oracle-identical or with a clean kIoError/kCorruption.
TEST(FaultInjectionTest, HundredRandomReadSchedulesOverMmapBackend) {
  Rng rng(5353);
  const std::string s = RandomDna(rng, 6000);
  CompactSpineIndex oracle(Alphabet::Dna());
  ASSERT_TRUE(oracle.AppendString(s).ok());

  // Build cleanly over POSIX first; the mmap backend is read-only and
  // only ever sees the finished artifact.
  const std::string path = TempPath("fi_mmap100.idx");
  {
    DiskSpine::Options options;
    options.pool_frames = 64;
    auto disk = DiskSpine::Create(Alphabet::Dna(), path, options);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AppendString(s).ok());
    ASSERT_TRUE((*disk)->Checkpoint().ok());
  }

  FaultInjectingBackend backend(MmapIoBackend());
  DiskSpine::Options options;
  options.pool_frames = 4;  // tiny pool: every query faults pages in
  options.backend = &backend;
  auto disk = DiskSpine::Open(path, options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  uint64_t clean_errors = 0, correct = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    backend.EnableRandomFaults(seed, /*rate=*/0.05);
    Rng qrng(seed * 977);
    for (const Query& query : MakeQueries(qrng, s, 4)) {
      QueryResult expected = ExecuteQuery(oracle, query);
      QueryResult got = ExecuteQuery(**disk, query);
      ASSERT_TRUE(CorrectOrCleanError(got, expected))
          << "seed " << seed << " pattern " << query.pattern;
      got.ok() ? ++correct : ++clean_errors;
    }
    backend.DisableRandomFaults();
  }
  EXPECT_GT(backend.faults_injected(), 0u);
  EXPECT_GT(clean_errors, 0u);
  EXPECT_GT(correct, 0u);
}

// The mmap backend is strictly read-only: creating a new artifact over
// it refuses cleanly, and a write reaching it (Checkpoint on an index
// opened over it) is a clean kIoError, not an abort.
TEST(FaultInjectionTest, MmapBackendRefusesWritesCleanly) {
  auto created = DiskSpine::Create(Alphabet::Dna(), TempPath("fi_mmap_ro.idx"),
                                   {.pool_frames = 8,
                                    .policy = ReplacementPolicy::kLru,
                                    .sync_mode = PageFile::SyncMode::kNone,
                                    .backend = MmapIoBackend()});
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kIoError);

  Rng rng(5354);
  const std::string s = RandomDna(rng, 2000);
  const std::string path = TempPath("fi_mmap_ro2.idx");
  {
    auto disk = DiskSpine::Create(Alphabet::Dna(), path, {});
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AppendString(s).ok());
    ASSERT_TRUE((*disk)->Checkpoint().ok());
  }
  DiskSpine::Options options;
  options.pool_frames = 8;
  options.backend = MmapIoBackend();
  auto disk = DiskSpine::Open(path, options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_TRUE((*disk)->Contains(s.substr(10, 8)));
  Status checkpoint = (*disk)->Checkpoint();
  ASSERT_FALSE(checkpoint.ok());
  EXPECT_EQ(checkpoint.code(), StatusCode::kIoError);
}

// --- injected latency / stalls (PR 7) ---------------------------------------

// (g) A scheduled stall delays the read but does not fail it, composes
// with (and precedes) a scheduled error on the same read, and is wiped
// by ClearScheduledFaults.
TEST(FaultInjectionTest, ScheduledStallDelaysButDoesNotFail) {
  const std::string path = TempPath("fi_stall.dat");
  FaultInjectingBackend backend;
  Result<PageFile> file =
      PageFile::Create(path, PageFile::SyncMode::kNone, &backend);
  ASSERT_TRUE(file.ok());
  uint8_t page[kPageSize] = {};
  SealPageChecksum(0, page);
  ASSERT_TRUE(file->WritePage(0, page).ok());

  backend.ScheduleReadStall(/*micros=*/30'000, /*nth=*/1);
  WallTimer timer;
  uint8_t raw[kPageSize];
  ASSERT_TRUE(file->ReadPage(0, raw).ok());
  EXPECT_GE(timer.ElapsedMillis(), 25.0);
  EXPECT_EQ(backend.stalls_injected(), 1u);

  // Stall + EIO on the same read: slow AND broken, in that order.
  backend.ScheduleReadStall(/*micros=*/20'000, /*nth=*/1);
  backend.ScheduleReadFault(FaultKind::kReadError, 1);
  timer.Reset();
  Status both = file->ReadPage(0, raw);
  ASSERT_FALSE(both.ok());
  EXPECT_EQ(both.code(), StatusCode::kIoError);
  EXPECT_GE(timer.ElapsedMillis(), 15.0);
  EXPECT_EQ(backend.stalls_injected(), 2u);

  // ClearScheduledFaults wipes pending stalls along with faults.
  backend.ScheduleReadStall(/*micros=*/500'000, /*nth=*/1);
  backend.ClearScheduledFaults();
  timer.Reset();
  ASSERT_TRUE(file->ReadPage(0, raw).ok());
  EXPECT_LT(timer.ElapsedMillis(), 100.0);
  EXPECT_EQ(backend.stalls_injected(), 2u);
}

// (h) ISSUE acceptance: a findall against a paged backend whose every
// read stalls returns kDeadlineExceeded within ~2x the deadline — the
// budget bounds wall time even though the medium has become molasses.
TEST(FaultInjectionTest, StalledFindAllReturnsDeadlineExceededPromptly) {
  Rng rng(606);
  const std::string s = RandomDna(rng, 6000);
  FaultInjectingBackend backend;
  DiskSpine::Options options;
  options.pool_frames = 4;  // cold, tiny pool: every query faults pages in
  options.backend = &backend;
  auto disk = DiskSpine::Create(Alphabet::Dna(), TempPath("fi_stall_dl.idx"),
                                options);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AppendString(s).ok());
  ASSERT_TRUE((*disk)->Flush().ok());

  backend.EnableRandomStalls(/*seed=*/1, /*rate=*/1.0, /*micros=*/20'000);
  engine::QueryEngine engine({.threads = 1,
                              .cache_bytes = 0,
                              .retry_limit = 2,
                              .retry_backoff_us = 0});
  core::DiskSpineAdapter adapter(**disk);
  std::vector<Query> queries = {Query::FindAll(s.substr(0, 3))};
  queries[0].deadline_ms = 50;
  WallTimer timer;
  engine::BatchStats stats;
  std::vector<QueryResult> results = engine.ExecuteBatch(adapter, queries,
                                                         &stats);
  const double elapsed_ms = timer.ElapsedMillis();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status_code, StatusCode::kDeadlineExceeded)
      << results[0].status().ToString();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  // ~2x budget: the worst case is the deadline firing just as a read
  // begins its stall (one 20 ms sleep of overshoot) plus scheduling
  // noise — nowhere near the seconds an unbounded walk would take.
  EXPECT_LT(elapsed_ms, 100.0);
  EXPECT_GT(backend.stalls_injected(), 0u);
}

// (i) 100 seeded schedules mixing stalls with EIO faults, queries with
// and without budgets: every single query ends in exactly one of kOk
// (oracle-identical), kIoError/kCorruption, or kDeadlineExceeded.
// Never a hang — stalls are bounded sleeps by construction, and the
// deadline turns their sum into a verdict.
TEST(FaultInjectionTest, HundredStallSchedulesAlwaysTerminateCleanly) {
  Rng rng(909);
  const std::string s = RandomDna(rng, 6000);
  CompactSpineIndex oracle(Alphabet::Dna());
  ASSERT_TRUE(oracle.AppendString(s).ok());

  FaultInjectingBackend backend;
  DiskSpine::Options options;
  options.pool_frames = 4;
  options.backend = &backend;
  auto disk = DiskSpine::Create(Alphabet::Dna(), TempPath("fi_stall100.idx"),
                                options);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AppendString(s).ok());
  ASSERT_TRUE((*disk)->Flush().ok());

  engine::QueryEngine engine({.threads = 2,
                              .cache_bytes = 0,
                              .retry_limit = 1,
                              .retry_backoff_us = 0});
  core::DiskSpineAdapter adapter(**disk);
  uint64_t correct = 0, io_errors = 0, deadline_errors = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    backend.EnableRandomStalls(seed, /*rate=*/0.2, /*micros=*/1'500);
    backend.EnableRandomFaults(seed * 7919, /*rate=*/0.02);
    Rng qrng(seed * 31);
    std::vector<Query> queries = MakeQueries(qrng, s, 3);
    for (Query& query : queries) {
      if (qrng.Chance(0.7)) query.deadline_ms = 4;
    }
    engine::BatchStats stats;
    std::vector<QueryResult> results =
        engine.ExecuteBatch(adapter, queries, &stats);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < results.size(); ++i) {
      const QueryResult& got = results[i];
      if (got.ok()) {
        EXPECT_TRUE(got.SameAnswer(ExecuteQuery(oracle, queries[i])))
            << "seed " << seed << " query " << i
            << " reported success with a wrong answer";
        ++correct;
      } else if (got.status_code == StatusCode::kIoError ||
                 got.status_code == StatusCode::kCorruption) {
        ++io_errors;
      } else if (got.status_code == StatusCode::kDeadlineExceeded) {
        ++deadline_errors;
      } else {
        FAIL() << "seed " << seed << " query " << i
               << " unexpected verdict: " << got.status().ToString();
      }
    }
  }
  backend.DisableRandomStalls();
  backend.DisableRandomFaults();
  // Every arm of the contract actually fired.
  EXPECT_GT(backend.stalls_injected(), 0u);
  EXPECT_GT(correct, 0u);
  EXPECT_GT(io_errors, 0u);
  EXPECT_GT(deadline_errors, 0u);
}

}  // namespace
}  // namespace spine::storage
