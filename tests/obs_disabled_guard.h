#ifndef SPINE_TESTS_OBS_DISABLED_GUARD_H_
#define SPINE_TESTS_OBS_DISABLED_GUARD_H_

#include <cstddef>

namespace spine::obs {
class Registry;
}  // namespace spine::obs

namespace spine::obs_test {

// Fires every SPINE_OBS_* macro from a TU compiled with
// SPINE_OBS_DISABLED and returns how many metrics that added to
// `registry` (must be 0). Implemented in obs_disabled_guard.cc.
size_t FireDisabledMacros(obs::Registry& registry);

}  // namespace spine::obs_test

#endif  // SPINE_TESTS_OBS_DISABLED_GUARD_H_
