// Tests for the compact (Section 5) SPINE layout: node-by-node
// equivalence with the reference implementation, search parity, label
// overflow handling, fan-out migration across rib tables, space
// accounting and the prefix-partitioning property.

#include "compact/compact_spine.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "compact/serializer.h"
#include "core/adapters.h"
#include "core/registry.h"
#include "kernel/kernel.h"
#include "core/spine_index.h"
#include "naive/naive_index.h"
#include "seq/generator.h"
#include "storage/mmap_region.h"
#include "test_util.h"

namespace spine {
namespace {

using spine::test::RandomString;

// Asserts that the compact index represents exactly the same logical
// structure as the reference index.
void ExpectEquivalent(const SpineIndex& ref, const CompactSpineIndex& compact) {
  ASSERT_EQ(ref.size(), compact.size());
  const NodeId n = static_cast<NodeId>(ref.size());
  for (NodeId i = 1; i <= n; ++i) {
    ASSERT_EQ(compact.LinkDest(i), ref.LinkDest(i)) << "node " << i;
    ASSERT_EQ(compact.LinkLel(i), ref.LinkLel(i)) << "node " << i;
  }
  for (NodeId i = 0; i <= n; ++i) {
    std::vector<CompactSpineIndex::RibView> got = compact.RibsAt(i);
    std::sort(got.begin(), got.end(),
              [](const auto& a, const auto& b) { return a.cl < b.cl; });
    std::vector<CompactSpineIndex::RibView> want;
    for (uint32_t c = 0; c < ref.alphabet().size(); ++c) {
      const SpineIndex::Rib* rib = ref.FindRib(i, static_cast<Code>(c));
      if (rib != nullptr) {
        want.push_back({static_cast<Code>(c), rib->dest, rib->pt});
      }
    }
    ASSERT_EQ(got.size(), want.size()) << "rib count at node " << i;
    for (size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got[k].cl, want[k].cl) << "node " << i;
      EXPECT_EQ(got[k].dest, want[k].dest) << "node " << i;
      EXPECT_EQ(got[k].pt, want[k].pt) << "node " << i;
    }
    const SpineIndex::Extrib* ext = ref.FindExtrib(i);
    auto compact_ext = compact.ExtribAt(i);
    ASSERT_EQ(compact_ext.has_value(), ext != nullptr) << "node " << i;
    if (ext != nullptr) {
      EXPECT_EQ(compact_ext->dest, ext->dest) << "node " << i;
      EXPECT_EQ(compact_ext->pt, ext->pt) << "node " << i;
      EXPECT_EQ(compact_ext->prt, ext->prt) << "node " << i;
      EXPECT_EQ(compact_ext->parent_dest, ext->parent_dest) << "node " << i;
    }
  }
}

TEST(CompactSpineTest, EquivalentToReferenceOnPaperExample) {
  SpineIndex ref(Alphabet::Dna());
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(ref.AppendString("aaccacaaca").ok());
  ASSERT_TRUE(compact.AppendString("aaccacaaca").ok());
  ASSERT_TRUE(compact.Validate().ok());
  ExpectEquivalent(ref, compact);
}

struct EquivCase {
  uint32_t sigma;
  uint32_t length;
  uint64_t seed;
};

class CompactEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(CompactEquivalenceTest, StructureAndSearchMatchReference) {
  const EquivCase param = GetParam();
  Rng rng(param.seed);
  std::string s = RandomString(rng, param.length, param.sigma);
  Alphabet alphabet =
      param.sigma <= 4 ? Alphabet::Dna() : Alphabet::Protein();
  SpineIndex ref(alphabet);
  CompactSpineIndex compact(alphabet);
  ASSERT_TRUE(ref.AppendString(s).ok());
  ASSERT_TRUE(compact.AppendString(s).ok());
  Status valid = compact.Validate();
  ASSERT_TRUE(valid.ok()) << valid.ToString();
  ExpectEquivalent(ref, compact);

  for (int trial = 0; trial < 150; ++trial) {
    std::string pattern;
    if (trial % 2 == 0) {
      uint32_t start = static_cast<uint32_t>(rng.Below(param.length));
      uint32_t len = 1 + static_cast<uint32_t>(rng.Below(
                             std::min<uint32_t>(16, param.length - start)));
      pattern = s.substr(start, len);
    } else {
      pattern = RandomString(rng, 1 + rng.Below(8), param.sigma);
    }
    ASSERT_EQ(compact.FindAll(pattern), ref.FindAll(pattern))
        << "string " << s << " pattern " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomStrings, CompactEquivalenceTest,
    ::testing::Values(EquivCase{2, 40, 71}, EquivCase{2, 150, 72},
                      EquivCase{2, 400, 73}, EquivCase{3, 200, 74},
                      EquivCase{4, 300, 75}, EquivCase{4, 1000, 76},
                      EquivCase{16, 400, 77}, EquivCase{19, 600, 78}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return "sigma" + std::to_string(info.param.sigma) + "_len" +
             std::to_string(info.param.length) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(CompactSpineTest, ProteinHighFanoutSpillsToBigEntries) {
  // A protein string engineered so one node accumulates many ribs: many
  // distinct characters each following the prefix "AA".
  std::string s;
  const std::string residues = "CDEFGHIKLMNPQRSTVWY";
  for (char r : residues) {
    s += "AA";
    s += r;
  }
  SpineIndex ref(Alphabet::Protein());
  CompactSpineIndex compact(Alphabet::Protein());
  ASSERT_TRUE(ref.AppendString(s).ok());
  ASSERT_TRUE(compact.AppendString(s).ok());
  ASSERT_TRUE(compact.Validate().ok());
  ExpectEquivalent(ref, compact);
  // Fan-out beyond 4 must exist (the node for prefix "AA"-context).
  EXPECT_GT(compact.FanoutCounts()[4], 0u);
}

TEST(CompactSpineTest, LabelOverflowBeyond16Bits) {
  // A run of 70,000 identical characters drives LEL up to 69,999, well
  // past the 16-bit label range; then a 'C' plants ribs with large PTs
  // along the whole link chain, and a repeat exercises their retrieval.
  constexpr uint32_t kRun = 70'000;
  std::string s(kRun, 'A');
  s += 'C';
  s += "AAAAAC";
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(s).ok());
  ASSERT_TRUE(compact.Validate().ok());
  EXPECT_GT(compact.max_lel(), 0xffffu);
  EXPECT_GT(compact.max_pt(), 0xffffu);
  // LEL values follow the run structure exactly.
  EXPECT_EQ(compact.LinkLel(kRun), kRun - 1);
  EXPECT_EQ(compact.LinkDest(kRun), kRun - 1);
  // Searches crossing the overflowed labels still work.
  EXPECT_TRUE(compact.Contains(std::string(kRun, 'A') + "C"));
  EXPECT_TRUE(compact.Contains("AAAAAC"));
  EXPECT_FALSE(compact.Contains(std::string(kRun + 1, 'A')));
  EXPECT_FALSE(compact.Contains("CC"));
  // The big-PT rib at the deep node is traversable at a deep pathlen.
  std::string deep = std::string(66'000, 'A') + "C";
  EXPECT_TRUE(compact.Contains(deep));
}

TEST(CompactSpineTest, FanoutMigrationAcrossRibTables) {
  // DNA string where some node gains ribs one at a time (RT1 -> RT2 ->
  // RT3), exercising entry migration and free-list recycling.
  std::string s = "TTATTCTTGTTT";  // after "TT": A, C, G, T follow
  SpineIndex ref(Alphabet::Dna());
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(ref.AppendString(s).ok());
  ASSERT_TRUE(compact.AppendString(s).ok());
  ASSERT_TRUE(compact.Validate().ok());
  ExpectEquivalent(ref, compact);
  auto counts = compact.FanoutCounts();
  uint64_t with_edges = counts[0] + counts[1] + counts[2] + counts[3];
  EXPECT_GT(with_edges, 0u);
}

TEST(CompactSpineTest, RejectsForeignCharacters) {
  CompactSpineIndex compact(Alphabet::Dna());
  EXPECT_FALSE(compact.Append('z').ok());
  EXPECT_EQ(compact.size(), 0u);
}

TEST(CompactSpineTest, SpaceAccountingIsPlausible) {
  seq::GeneratorOptions options;
  options.length = 200'000;
  options.seed = 5;
  std::string s = seq::GenerateSequence(Alphabet::Dna(), options);
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(s).ok());
  auto breakdown = compact.LogicalBytes();
  double per_char = breakdown.BytesPerChar(compact.size());
  // The paper's headline: < 12 bytes per indexed character. Leave a
  // little slack for the synthetic data's repeat profile.
  EXPECT_LT(per_char, 13.0) << per_char;
  EXPECT_GT(per_char, 6.0) << per_char;  // LT alone is 6 B/char
  // Logical size is a lower bound on the real allocation.
  EXPECT_LE(breakdown.Total(), compact.MemoryBytes());
}

TEST(CompactSpineTest, PrefixPartitioning) {
  // Section 2.7: the index of a prefix is the initial fragment of the
  // index — nodes <= k keep their links, and their ribs/extribs
  // restricted to destinations <= k are exactly the prefix's edges.
  Rng rng(321);
  std::string s = RandomString(rng, 300, 4);
  CompactSpineIndex full(Alphabet::Dna());
  ASSERT_TRUE(full.AppendString(s).ok());
  for (uint32_t k : {37u, 120u, 299u}) {
    CompactSpineIndex prefix(Alphabet::Dna());
    ASSERT_TRUE(prefix.AppendString(std::string_view(s).substr(0, k)).ok());
    for (NodeId i = 1; i <= k; ++i) {
      ASSERT_EQ(prefix.LinkDest(i), full.LinkDest(i)) << i;
      ASSERT_EQ(prefix.LinkLel(i), full.LinkLel(i)) << i;
    }
    for (NodeId i = 0; i <= k; ++i) {
      auto full_ribs = full.RibsAt(i);
      auto prefix_ribs = prefix.RibsAt(i);
      // Drop full-index ribs that extend beyond the prefix.
      full_ribs.erase(
          std::remove_if(full_ribs.begin(), full_ribs.end(),
                         [&](const auto& rib) { return rib.dest > k; }),
          full_ribs.end());
      auto by_cl = [](const auto& a, const auto& b) { return a.cl < b.cl; };
      std::sort(full_ribs.begin(), full_ribs.end(), by_cl);
      std::sort(prefix_ribs.begin(), prefix_ribs.end(), by_cl);
      ASSERT_EQ(prefix_ribs.size(), full_ribs.size()) << "node " << i;
      for (size_t r = 0; r < full_ribs.size(); ++r) {
        EXPECT_EQ(prefix_ribs[r].cl, full_ribs[r].cl);
        EXPECT_EQ(prefix_ribs[r].dest, full_ribs[r].dest);
        EXPECT_EQ(prefix_ribs[r].pt, full_ribs[r].pt);
      }
    }
  }
}

// Long patterns through the packed-label bulk comparison: >one-page
// (4 KiB) runs whose 2-bit DNA codes span many 64-bit words, and 5-bit
// protein codes that straddle word boundaries (64/5 is not integral, so
// every word boundary splits a code). Results must match the reference
// index and the text oracle under every dispatch level.
TEST(CompactSpineTest, LongPatternsStraddleWordBoundariesUnderEveryKernel) {
  struct Case {
    const Alphabet& alphabet;
    std::string text;
  };
  Rng rng(246);
  const Case cases[] = {
      {Alphabet::Dna(), spine::test::TestCorpus(12'000, /*seed=*/9)},
      {Alphabet::Protein(), RandomString(rng, 12'000, 19)},
  };
  for (const Case& c : cases) {
    CompactSpineIndex compact(c.alphabet);
    ASSERT_TRUE(compact.AppendString(c.text).ok());
    SpineIndex reference(c.alphabet);
    ASSERT_TRUE(reference.AppendString(c.text).ok());

    // Hit: spans the 4 KiB mark. Near miss: same, with the final
    // character flipped so the mismatch sits at the very tail of the
    // last comparison block.
    const std::string hit = c.text.substr(3'000, 4'097);
    std::string near_miss = hit;
    near_miss.back() = near_miss.back() == 'A' ? 'C' : 'A';
    const bool near_miss_present = c.text.find(near_miss) != std::string::npos;

    for (const kernel::Kind kind : kernel::SupportedKinds()) {
      ASSERT_TRUE(kernel::Force(kind).ok());
      const std::string tag =
          std::string(c.alphabet.name()) + "/" + kernel::KindName(kind);
      EXPECT_EQ(compact.FindFirstEnd(hit), reference.FindFirstEnd(hit)) << tag;
      EXPECT_EQ(compact.FindAll(hit), spine::test::OracleFindAll(c.text, hit))
          << tag;
      EXPECT_TRUE(compact.Contains(hit)) << tag;
      EXPECT_EQ(compact.Contains(near_miss), near_miss_present) << tag;
      EXPECT_EQ(compact.FindAll(near_miss),
                spine::test::OracleFindAll(c.text, near_miss))
          << tag;
    }
  }
  (void)kernel::ForceByName("auto");
}

TEST(SerializerTest, RoundTrip) {
  Rng rng(654);
  std::string s = RandomString(rng, 2000, 4);
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(s).ok());

  const std::string path = ::testing::TempDir() + "/spine_roundtrip.idx";
  Status save = SaveCompactSpine(index, path);
  ASSERT_TRUE(save.ok()) << save.ToString();

  Result<CompactSpineIndex> loaded = LoadCompactSpine(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), index.size());
  for (NodeId i = 1; i <= index.size(); ++i) {
    ASSERT_EQ(loaded->LinkDest(i), index.LinkDest(i));
    ASSERT_EQ(loaded->LinkLel(i), index.LinkLel(i));
  }
  // The index is self-contained: the string reconstructs from labels.
  for (uint64_t i = 0; i < index.size(); ++i) {
    ASSERT_EQ(loaded->CharAt(i), index.CharAt(i));
  }
  for (int trial = 0; trial < 50; ++trial) {
    uint32_t start = static_cast<uint32_t>(rng.Below(s.size() - 8));
    std::string pattern = s.substr(start, 1 + rng.Below(8));
    ASSERT_EQ(loaded->FindAll(pattern), index.FindAll(pattern));
  }
}

TEST(SerializerTest, RoundTripProteinWithBigEntries) {
  std::string s;
  const std::string residues = "CDEFGHIKLMNPQRSTVWY";
  for (char r : residues) {
    s += "AA";
    s += r;
  }
  CompactSpineIndex index(Alphabet::Protein());
  ASSERT_TRUE(index.AppendString(s).ok());
  const std::string path = ::testing::TempDir() + "/spine_protein.idx";
  ASSERT_TRUE(SaveCompactSpine(index, path).ok());
  Result<CompactSpineIndex> loaded = LoadCompactSpine(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->Contains("AAC"));
  EXPECT_TRUE(loaded->Contains("CAAD"));
  EXPECT_FALSE(loaded->Contains("CC"));
}

TEST(SerializerTest, RejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/spine_bad.idx";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "this is not an index";
  }
  Result<CompactSpineIndex> loaded = LoadCompactSpine(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(LoadCompactSpine("/nonexistent/path.idx").ok());
}

TEST(SerializerTest, RejectsTruncatedFiles) {
  std::string s = "ACGTACGTACGGTA";
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(s).ok());
  const std::string path = ::testing::TempDir() + "/spine_trunc.idx";
  ASSERT_TRUE(SaveCompactSpine(index, path).ok());
  // Truncate the file to half.
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    contents = buf.str();
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  Result<CompactSpineIndex> loaded = LoadCompactSpine(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

// Every corruption class returns kCorruption through a clean Status —
// the loader must never abort or throw (PR 2 satellite).
class SerializerCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CompactSpineIndex index(Alphabet::Dna());
    ASSERT_TRUE(index.AppendString("ACGTACGGTACGTTACGATT").ok());
    std::ostringstream out;
    ASSERT_TRUE(SaveCompactSpineToStream(index, out).ok());
    image_ = out.str();
  }

  StatusCode LoadCodeFor(const std::string& bytes) {
    std::istringstream in(bytes);
    Result<CompactSpineIndex> loaded = LoadCompactSpineFromStream(in);
    return loaded.ok() ? StatusCode::kOk : loaded.status().code();
  }

  std::string image_;
};

TEST_F(SerializerCorruptionTest, BadMagic) {
  std::string bad = image_;
  bad[0] = static_cast<char>(bad[0] ^ 0xff);
  EXPECT_EQ(LoadCodeFor(bad), StatusCode::kCorruption);
}

TEST_F(SerializerCorruptionTest, WrongVersion) {
  std::string bad = image_;
  bad[4] = static_cast<char>(bad[4] + 1);  // version field follows magic
  EXPECT_EQ(LoadCodeFor(bad), StatusCode::kCorruption);
}

TEST_F(SerializerCorruptionTest, TruncatedAtEveryPrefix) {
  // Every truncation point fails cleanly, including the empty file.
  for (size_t len = 0; len < image_.size(); len += 7) {
    EXPECT_EQ(LoadCodeFor(image_.substr(0, len)), StatusCode::kCorruption)
        << "truncated to " << len << " of " << image_.size();
  }
}

TEST_F(SerializerCorruptionTest, SingleBitPayloadFlipCaughtByChecksum) {
  // Flip one bit in every byte position past the header; the image
  // CRC32C footer guarantees any single-bit error is rejected.
  for (size_t pos = 8; pos < image_.size(); pos += 11) {
    std::string bad = image_;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x08);
    EXPECT_EQ(LoadCodeFor(bad), StatusCode::kCorruption)
        << "bit flip at byte " << pos << " was not rejected";
  }
}

// --- zero-copy mmap open path (PR 8) ----------------------------------------

// Loads `bytes` through the borrow-from-mapping deserializer (written
// to a file and mapped, so the data is page-aligned exactly as the
// registry's mmap open sees it) and returns the verdict code.
StatusCode MmapLoadCodeFor(const std::string& bytes, const std::string& path) {
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto region = storage::MmapRegion::Map(path);
  if (!region.ok()) return region.status().code();
  Result<CompactSpineIndex> loaded = LoadCompactSpineFromMemory(
      (*region)->data(), (*region)->size(), /*verify=*/true, *region);
  return loaded.ok() ? StatusCode::kOk : loaded.status().code();
}

// The identical-verdict property the image-mode fuzzer leans on: for
// any mutation of a valid image — truncations at every prefix, bit
// flips through header, payload AND the CRC footer itself — the mmap
// path returns exactly the verdict the heap path returns.
TEST_F(SerializerCorruptionTest, MmapVerdictMatchesHeapOnEveryMutation) {
  const std::string path =
      ::testing::TempDir() + "/spine_mmap_verdict.idx";
  // The pristine image loads on both paths.
  ASSERT_EQ(LoadCodeFor(image_), StatusCode::kOk);
  ASSERT_EQ(MmapLoadCodeFor(image_, path), StatusCode::kOk);
  for (size_t len = 0; len < image_.size(); len += 5) {
    const std::string bad = image_.substr(0, len);
    EXPECT_EQ(MmapLoadCodeFor(bad, path), LoadCodeFor(bad))
        << "verdicts diverge on truncation to " << len;
  }
  for (size_t pos = 0; pos < image_.size(); pos += 9) {
    std::string bad = image_;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x04);
    EXPECT_EQ(MmapLoadCodeFor(bad, path), LoadCodeFor(bad))
        << "verdicts diverge on bit flip at byte " << pos;
  }
  // The footer specifically: flipping any of the last 4 bytes breaks
  // the stored CRC, and both paths must say kCorruption.
  for (size_t i = 1; i <= 4; ++i) {
    std::string bad = image_;
    bad[bad.size() - i] = static_cast<char>(bad[bad.size() - i] ^ 0xff);
    EXPECT_EQ(LoadCodeFor(bad), StatusCode::kCorruption);
    EXPECT_EQ(MmapLoadCodeFor(bad, path), StatusCode::kCorruption);
  }
}

// Trailing garbage after the footer is tolerated identically (the
// shard loader relies on this when images are CRC-pinned by size).
TEST_F(SerializerCorruptionTest, MmapToleratesTrailingBytesLikeHeap) {
  const std::string path = ::testing::TempDir() + "/spine_mmap_trail.idx";
  std::string padded = image_ + std::string(13, '\0');
  EXPECT_EQ(LoadCodeFor(padded), StatusCode::kOk);
  EXPECT_EQ(MmapLoadCodeFor(padded, path), StatusCode::kOk);
}

// mmap-noverify still rejects images whose geometry is wrong (bounds
// checks are never skipped), via the registry's open path.
TEST(SerializerTest, MmapNoverifySkipsChecksumButKeepsBounds) {
  Rng rng(991);
  std::string s = RandomString(rng, 1200, 4);
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(s).ok());
  const std::string path = ::testing::TempDir() + "/spine_noverify.idx";
  ASSERT_TRUE(SaveCompactSpine(index, path).ok());

  Result<core::OpenOptions> noverify = core::ParseOpenSpec("mmap-noverify");
  ASSERT_TRUE(noverify.ok());
  auto opened = core::BackendRegistry::Default().Open(path, *noverify);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  QueryResult result = (*opened)->Execute(Query::FindAll(s.substr(30, 6)));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.hits.size(),
            spine::test::OracleFindAll(s, s.substr(30, 6)).size());

  // A truncated image still fails cleanly without the checksum pass.
  const std::string short_path =
      ::testing::TempDir() + "/spine_noverify_short.idx";
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    std::ofstream out(short_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }
  auto truncated =
      core::BackendRegistry::Default().Open(short_path, *noverify);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kCorruption);
}

// The shrink race: artifact validated at open, file truncated while
// the index is live. The next query and the next verify both surface a
// clean kIoError from the mapping fence — never SIGBUS, never a wrong
// answer.
TEST(SerializerTest, MmapShrinkBetweenOpenAndQueryIsCleanIoError) {
  Rng rng(313);
  std::string s = RandomString(rng, 4000, 4);
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(s).ok());
  const std::string path = ::testing::TempDir() + "/spine_shrink.idx";
  ASSERT_TRUE(SaveCompactSpine(index, path).ok());

  Result<core::OpenOptions> mmap = core::ParseOpenSpec("mmap");
  ASSERT_TRUE(mmap.ok());
  auto opened = core::BackendRegistry::Default().Open(path, *mmap);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Query query = Query::FindAll(s.substr(100, 8));
  ASSERT_TRUE((*opened)->Execute(query).ok());

  std::filesystem::resize_file(path, 64);
  QueryResult after = (*opened)->Execute(query);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status_code, StatusCode::kIoError);
  Status verify = (*opened)->VerifyStructure();
  ASSERT_FALSE(verify.ok());
  EXPECT_EQ(verify.code(), StatusCode::kIoError);
  // The error is a verdict, not a latch: asking again gives the same
  // clean answer (no crash, no stale success).
  EXPECT_EQ((*opened)->Execute(query).status_code, StatusCode::kIoError);
}

}  // namespace
}  // namespace spine
