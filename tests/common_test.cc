// Tests for the common substrate: Status/Result, RNG, timer, and the
// deadline / cooperative-cancellation primitives (common/cancel.h).

#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace spine {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kIoError, StatusCode::kCorruption,
        StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition,
        StatusCode::kOverloaded, StatusCode::kProtocolError,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Status FailsAtSecondStep() {
  SPINE_RETURN_IF_ERROR(Status::OK());
  SPINE_RETURN_IF_ERROR(Status::IoError("boom"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  Status status = FailsAtSecondStep();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  EXPECT_TRUE(ok_result.status().ok());

  Result<int> err_result(Status::OutOfRange("too big"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

TEST(RngTest, DeterministicAndRoughlyUniform) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.Next(), b.Next());

  Rng rng(7);
  int buckets[10] = {0};
  for (int i = 0; i < 100000; ++i) ++buckets[rng.Below(10)];
  for (int bucket : buckets) {
    EXPECT_GT(bucket, 8500);
    EXPECT_LT(bucket, 11500);
  }
}

TEST(RngTest, BetweenAndChance) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Between(5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
  }
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Chance(0.25) ? 1 : 0;
  EXPECT_GT(heads, 2000);
  EXPECT_LT(heads, 3000);
  for (int i = 0; i < 100; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.IsInfinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingMicros(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(deadline.RemainingMs(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(deadline, Deadline::Infinite());
}

TEST(DeadlineTest, AfterMsExpires) {
  Deadline deadline = Deadline::AfterMs(0);
  EXPECT_FALSE(deadline.IsInfinite());
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingMicros(), 0);

  Deadline future = Deadline::AfterMs(60'000);
  EXPECT_FALSE(future.Expired());
  EXPECT_GT(future.RemainingMicros(), 0);
  EXPECT_LE(future.RemainingMs(), 60'000);
}

TEST(DeadlineTest, HugeBudgetSaturatesInsteadOfOverflowing) {
  // uint32 max milliseconds (the largest wire value) and beyond must
  // read as "effectively never", not wrap into the past.
  Deadline huge = Deadline::AfterMs(std::numeric_limits<uint32_t>::max());
  EXPECT_FALSE(huge.Expired());
  Deadline max = Deadline::AfterMicros(std::numeric_limits<uint64_t>::max());
  EXPECT_FALSE(max.Expired());
  EXPECT_TRUE(max.IsInfinite());
}

TEST(DeadlineTest, SoonerPicksTheEarlier) {
  Deadline early = Deadline::AfterMs(1);
  Deadline late = Deadline::AfterMs(60'000);
  EXPECT_EQ(Deadline::Sooner(early, late), early);
  EXPECT_EQ(Deadline::Sooner(late, early), early);
  EXPECT_EQ(Deadline::Sooner(late, Deadline::Infinite()), late);
}

TEST(CancelTokenTest, FiresOnCancelAndOnDeadline) {
  CancelToken token;
  EXPECT_FALSE(token.Fired());
  EXPECT_EQ(token.FiredCode(), StatusCode::kOk);
  EXPECT_TRUE(token.ToStatus().ok());
  token.Cancel();
  EXPECT_TRUE(token.Fired());
  EXPECT_EQ(token.FiredCode(), StatusCode::kCancelled);
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);

  CancelToken expired(Deadline::AfterMs(0));
  EXPECT_TRUE(expired.Fired());
  EXPECT_EQ(expired.FiredCode(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(expired.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, ExplicitCancelWinsOverExpiredDeadline) {
  CancelToken token(Deadline::AfterMs(0));
  token.Cancel();
  EXPECT_EQ(token.FiredCode(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ChainsToParent) {
  CancelToken parent;
  CancelToken child(Deadline::Infinite(), &parent);
  EXPECT_FALSE(child.Fired());
  parent.Cancel();
  EXPECT_TRUE(child.Fired());
  EXPECT_EQ(child.FiredCode(), StatusCode::kCancelled);

  CancelToken expired_parent(Deadline::AfterMs(0));
  CancelToken child2(Deadline::Infinite(), &expired_parent);
  EXPECT_TRUE(child2.Fired());
  EXPECT_EQ(child2.FiredCode(), StatusCode::kDeadlineExceeded);
}

TEST(CancelCheckpointTest, NullTokenNeverStops) {
  CancelCheckpoint checkpoint(nullptr, 2);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(checkpoint.ShouldStop());
}

TEST(CancelCheckpointTest, PollsAtIntervalAndSticks) {
  CancelToken token;
  CancelCheckpoint checkpoint(&token, 4);
  // Not fired: never stops, no matter how often it is asked.
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(checkpoint.ShouldStop());
  token.Cancel();
  // The poll happens every 4th call; until then the stale "not fired"
  // answer is allowed...
  bool stopped = false;
  for (int i = 0; i < 4 && !stopped; ++i) stopped = checkpoint.ShouldStop();
  EXPECT_TRUE(stopped);
  // ...and once fired, the answer is sticky on every later call.
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(checkpoint.ShouldStop());
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<uint64_t>(i);
  ASSERT_GT(sink, 0u);  // keep the loop observable
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_EQ(timer.ElapsedMillis() > 0.0, true);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), elapsed + 1.0);
}

}  // namespace
}  // namespace spine
