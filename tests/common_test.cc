// Tests for the common substrate: Status/Result, RNG, timer.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace spine {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kIoError, StatusCode::kCorruption,
        StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Status FailsAtSecondStep() {
  SPINE_RETURN_IF_ERROR(Status::OK());
  SPINE_RETURN_IF_ERROR(Status::IoError("boom"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  Status status = FailsAtSecondStep();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  EXPECT_TRUE(ok_result.status().ok());

  Result<int> err_result(Status::OutOfRange("too big"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

TEST(RngTest, DeterministicAndRoughlyUniform) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.Next(), b.Next());

  Rng rng(7);
  int buckets[10] = {0};
  for (int i = 0; i < 100000; ++i) ++buckets[rng.Below(10)];
  for (int bucket : buckets) {
    EXPECT_GT(bucket, 8500);
    EXPECT_LT(bucket, 11500);
  }
}

TEST(RngTest, BetweenAndChance) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Between(5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
  }
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Chance(0.25) ? 1 : 0;
  EXPECT_GT(heads, 2000);
  EXPECT_LT(heads, 3000);
  for (int i = 0; i < 100; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<uint64_t>(i);
  ASSERT_GT(sink, 0u);  // keep the loop observable
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_EQ(timer.ElapsedMillis() > 0.0, true);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), elapsed + 1.0);
}

}  // namespace
}  // namespace spine
