// Cross-module edge cases: boundary inputs, degenerate sizes, and
// behaviours at the seams between components.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "align/aligner.h"
#include "align/hamming.h"
#include "common/rng.h"
#include "compact/compact_spine.h"
#include "core/matcher.h"
#include "core/search.h"
#include "core/spine_index.h"
#include "seq/generator.h"
#include "suffix_tree/suffix_tree.h"

namespace spine {
namespace {

// --- Matcher boundaries -------------------------------------------------

TEST(EdgeCases, MatcherEmptyQueryAndOversizedMinLen) {
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("ACGTACGT").ok());
  EXPECT_TRUE(FindMaximalMatches(index, "", 1).empty());
  // min_len longer than any possible match.
  EXPECT_TRUE(FindMaximalMatches(index, "ACG", 10).empty());
  // Query longer than the data still works (matching statistics).
  auto matches = FindMaximalMatches(index, "ACGTACGTACGTACGT", 4);
  EXPECT_FALSE(matches.empty());
}

TEST(EdgeCases, MatcherAgainstEmptyIndex) {
  SpineIndex index(Alphabet::Dna());
  EXPECT_TRUE(FindMaximalMatches(index, "ACGT", 1).empty());
  EXPECT_TRUE(GenericMatchingStatistics(index, "ACGT").empty() ||
              GenericMatchingStatistics(index, "ACGT") ==
                  std::vector<uint32_t>(4, 0));
}

TEST(EdgeCases, SingleCharacterEverything) {
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.Append('G').ok());
  EXPECT_TRUE(index.Contains("G"));
  EXPECT_EQ(index.FindAll("G"), (std::vector<uint32_t>{0}));
  auto matches = FindMaximalMatches(index, "G", 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].length, 1u);
  auto occurrences = CollectAllOccurrences(index, matches);
  ASSERT_EQ(occurrences.size(), 1u);
  EXPECT_EQ(occurrences[0].data_positions, (std::vector<uint32_t>{0}));
  EXPECT_EQ(LongestRepeatedSubstring(index).length, 0u);
}

TEST(EdgeCases, CollectOccurrencesWithSharedFirstEnds) {
  // Two reported matches that first-end at the same node but with
  // different lengths — the watch map must keep both.
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("ACGTACGTACGT").ok());
  std::vector<MaximalMatch> matches = {
      {0, 4, 4},  // "ACGT" first ends at node 4
      {1, 3, 4},  // "CGT" also first ends at node 4
  };
  auto expanded = CollectAllOccurrences(index, matches);
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[0].data_positions, (std::vector<uint32_t>{0, 4, 8}));
  EXPECT_EQ(expanded[1].data_positions, (std::vector<uint32_t>{1, 5, 9}));
}

// --- Aligner gap behaviour ----------------------------------------------

TEST(EdgeCases, AlignerSkipsOversizedGaps) {
  // Two anchored blocks separated by a large unrelated insert in the
  // query; with a small max_gap the insert must be reported unaligned,
  // not edit-aligned.
  seq::GeneratorOptions gen;
  gen.length = 4000;
  gen.seed = 1;
  std::string reference = seq::GenerateSequence(Alphabet::Dna(), gen);
  gen.seed = 2;
  std::string insert = seq::GenerateSequence(Alphabet::Dna(), gen);
  std::string query = reference.substr(0, 2000) + insert +
                      reference.substr(2000);

  align::AlignOptions options;
  options.min_anchor_len = 30;
  options.max_gap = 100;
  Result<align::AlignmentResult> result =
      align::AlignSequences(reference, query, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->unaligned_query, insert.size() * 9 / 10);
  EXPECT_GT(result->anchored_bases, 3000u);
}

TEST(EdgeCases, AlignerEmptyInputs) {
  Result<align::AlignmentResult> empty_query =
      align::AlignSequences("ACGTACGT", "");
  ASSERT_TRUE(empty_query.ok());
  EXPECT_EQ(empty_query->anchored_bases, 0u);
  Result<align::AlignmentResult> empty_data =
      align::AlignSequences("", "ACGT");
  ASSERT_TRUE(empty_data.ok());
  EXPECT_EQ(empty_data->anchored_bases, 0u);
  EXPECT_EQ(empty_data->unaligned_query, 4u);
}

TEST(EdgeCases, AlignerByteFallbackForNonGenomicData) {
  // Data with characters outside DNA and printable ASCII routes through
  // the reference (byte-alphabet) implementation.
  std::string data = "hello\x01world\x02hello\x01world";
  std::string query = "hello\x01world";
  align::AlignOptions options;
  options.min_anchor_len = 5;
  Result<align::AlignmentResult> result =
      align::AlignSequences(data, query, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->anchored_bases, query.size());
}

// --- Hamming DFS boundaries ----------------------------------------------

TEST(EdgeCases, HammingProteinAndFullPatternBudget) {
  CompactSpineIndex index(Alphabet::Protein());
  ASSERT_TRUE(index.AppendString("MKVLAWGH").ok());
  auto hits = align::FindHammingMatches(index, "MKVLA", 1);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].data_pos, 0u);
  EXPECT_EQ(hits[0].mismatches, 0u);
  // Pattern equal to the whole text, with mismatches allowed.
  auto whole = align::FindHammingMatches(index, "MKVLAWGG", 1);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0].mismatches, 1u);
}

// --- Search templates on every implementation ----------------------------

TEST(EdgeCases, GenericFindFirstEndEmptyPattern) {
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString("ACGT").ok());
  auto end = GenericFindFirstEnd(compact, "");
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, kRootNode);
  EXPECT_TRUE(GenericFindAll(compact, "").empty());
}

TEST(EdgeCases, PatternsAtTheTail) {
  // Matches touching the very last character, across implementations.
  const std::string s = "ACGTACGG";
  SpineIndex reference(Alphabet::Dna());
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(reference.AppendString(s).ok());
  ASSERT_TRUE(compact.AppendString(s).ok());
  for (const char* pattern : {"G", "GG", "CGG", "ACGG", "TACGG"}) {
    EXPECT_TRUE(reference.Contains(pattern)) << pattern;
    EXPECT_TRUE(compact.Contains(pattern)) << pattern;
    EXPECT_EQ(reference.FindAll(pattern).back() + strlen(pattern), s.size())
        << pattern;
  }
}

// --- Suffix tree interleaving --------------------------------------------

TEST(EdgeCases, SuffixTreeQueriesBetweenAppends) {
  SuffixTree tree(Alphabet::Dna());
  std::string s;
  Rng rng(77);
  const char* letters = "ACGT";
  for (int i = 0; i < 200; ++i) {
    char c = letters[rng.Below(2)];
    s.push_back(c);
    ASSERT_TRUE(tree.Append(c).ok());
    if (i % 11 == 7) {
      std::string pattern = s.substr(rng.Below(s.size()), 3);
      EXPECT_EQ(tree.Contains(pattern),
                s.find(pattern) != std::string::npos)
          << s << " / " << pattern;
    }
  }
  EXPECT_TRUE(tree.Validate().ok());
}

// --- Status / misc --------------------------------------------------------

TEST(EdgeCases, StatusWithoutMessage) {
  Status status(StatusCode::kIoError, "");
  EXPECT_EQ(status.ToString(), "IoError");
}

TEST(EdgeCases, ValidateOnEmptyIndexes) {
  SpineIndex reference(Alphabet::Protein());
  EXPECT_TRUE(reference.Validate().ok());
  CompactSpineIndex compact(Alphabet::Protein());
  EXPECT_TRUE(compact.Validate().ok());
  EXPECT_EQ(compact.LogicalBytes().BytesPerChar(0), 0.0);
}

}  // namespace
}  // namespace spine
