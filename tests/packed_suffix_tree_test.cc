// Tests for the space-reduced (head, depth) suffix tree: functional
// equivalence with the textbook SuffixTree and the brute-force oracle,
// plus the space target that motivates it.

#include "suffix_tree/packed_suffix_tree.h"

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "naive/naive_index.h"
#include "seq/generator.h"
#include "suffix_tree/suffix_tree.h"

namespace spine {
namespace {

TEST(PackedSuffixTreeTest, EmptyAndBasics) {
  PackedSuffixTree tree(Alphabet::Dna());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Contains(""));
  EXPECT_FALSE(tree.Contains("A"));
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_FALSE(tree.Append('x').ok());
  ASSERT_TRUE(tree.AppendString("ACCACAACA").ok());
  EXPECT_TRUE(tree.Contains("CCAC"));
  EXPECT_TRUE(tree.Contains("ACCACAACA"));
  EXPECT_FALSE(tree.Contains("ACCAA"));
  EXPECT_FALSE(tree.Contains("G"));
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(PackedSuffixTreeTest, FindAllOnRepeats) {
  PackedSuffixTree tree(Alphabet::Dna());
  ASSERT_TRUE(tree.AppendString("ACACACA").ok());
  EXPECT_EQ(tree.FindAll("ACA"), (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_EQ(tree.FindAll("ACACACA"), (std::vector<uint32_t>{0}));
  EXPECT_TRUE(tree.FindAll("CC").empty());
}

struct PackedCase {
  uint32_t sigma;
  uint32_t length;
  uint64_t seed;
};

class PackedTreeOracleTest : public ::testing::TestWithParam<PackedCase> {};

TEST_P(PackedTreeOracleTest, AgreesWithTextbookTreeAndOracle) {
  const PackedCase param = GetParam();
  Rng rng(param.seed);
  const char* letters = "ACGT";
  std::string s;
  for (uint32_t i = 0; i < param.length; ++i) {
    s.push_back(letters[rng.Below(param.sigma)]);
  }
  PackedSuffixTree packed(Alphabet::Dna());
  SuffixTree textbook(Alphabet::Dna());
  // Interleave appends with validation (online behaviour).
  for (size_t i = 0; i < s.size(); ++i) {
    ASSERT_TRUE(packed.Append(s[i]).ok());
    ASSERT_TRUE(textbook.Append(s[i]).ok());
    if (i % 37 == 5) {
      Status valid = packed.Validate();
      ASSERT_TRUE(valid.ok()) << valid.ToString() << " at " << i;
    }
  }
  ASSERT_TRUE(packed.Validate().ok());

  for (uint32_t start = 0; start < param.length; ++start) {
    for (uint32_t len = 1; start + len <= param.length && len <= 24; ++len) {
      std::string_view pattern = std::string_view(s).substr(start, len);
      ASSERT_EQ(packed.FindAll(pattern), naive::FindAllOccurrences(s, pattern))
          << "string " << s << " pattern " << pattern;
    }
  }
  for (int trial = 0; trial < 200; ++trial) {
    std::string pattern;
    for (uint32_t i = 0; i < 1 + rng.Below(10); ++i) {
      pattern.push_back(letters[rng.Below(param.sigma)]);
    }
    ASSERT_EQ(packed.Contains(pattern), textbook.Contains(pattern))
        << "string " << s << " pattern " << pattern;
    ASSERT_EQ(packed.FindAll(pattern), textbook.FindAll(pattern))
        << "string " << s << " pattern " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomStrings, PackedTreeOracleTest,
    ::testing::Values(PackedCase{2, 30, 1}, PackedCase{2, 100, 2},
                      PackedCase{2, 250, 3}, PackedCase{3, 150, 4},
                      PackedCase{4, 200, 5}, PackedCase{4, 400, 6}),
    [](const ::testing::TestParamInfo<PackedCase>& info) {
      return "sigma" + std::to_string(info.param.sigma) + "_len" +
             std::to_string(info.param.length) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(PackedSuffixTreeTest, HitsTheKurtzSpaceClass) {
  seq::GeneratorOptions gen;
  gen.length = 200'000;
  gen.seed = 55;
  gen.repeat_fraction = 0.05;
  gen.mean_repeat_len = 500;
  std::string s = seq::GenerateSequence(Alphabet::Dna(), gen);

  PackedSuffixTree packed(Alphabet::Dna());
  ASSERT_TRUE(packed.AppendString(s).ok());
  SuffixTree textbook(Alphabet::Dna());
  ASSERT_TRUE(textbook.AppendString(s).ok());

  double packed_bpc =
      static_cast<double>(packed.MemoryBytes()) / static_cast<double>(s.size());
  double textbook_bpc = static_cast<double>(textbook.MemoryBytes()) /
                        static_cast<double>(s.size());
  // The paper benchmarks ~17 B/char suffix trees (Kurtz's class);
  // (head, depth) packing should land near that, far below the
  // textbook layout.
  EXPECT_LT(packed_bpc, 22.0) << packed_bpc;
  EXPECT_GT(packed_bpc, 8.0) << packed_bpc;
  EXPECT_LT(packed_bpc, textbook_bpc / 1.8);
}

TEST(PackedSuffixTreeTest, PaperExampleStructure) {
  // For "aaccacaaca" the explicit suffix tree has at most 13 nodes
  // (Section 1.1); the packed layout stores the same tree, so its
  // internal-node count (root included) plus explicit leaves must
  // equal the textbook's total node count.
  PackedSuffixTree tree(Alphabet::Dna());
  ASSERT_TRUE(tree.AppendString("aaccacaaca").ok());
  SuffixTree textbook(Alphabet::Dna());
  ASSERT_TRUE(textbook.AppendString("aaccacaaca").ok());
  EXPECT_LE(tree.internal_node_count(), textbook.node_count());
  EXPECT_GT(tree.internal_node_count(), 1u);
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.FindAll("ac"), (std::vector<uint32_t>{1, 4, 7}));
}

}  // namespace
}  // namespace spine
