// Tests for the benchmark-harness utilities.

#include "bench_util/table.h"

#include <gtest/gtest.h>

namespace spine::bench {
namespace {

TEST(FormatTest, Doubles) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(FormatPercent(0.315), "31.5%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.0), "0.0%");
}

TEST(FormatTest, Counts) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MiB");
  EXPECT_EQ(FormatBytes(5ull << 30), "5.0 GiB");
}

TEST(FormatTest, Mega) {
  EXPECT_EQ(FormatMega(3'500'000), "3.50 M");
  EXPECT_EQ(FormatMega(350'000), "0.35 M");
}

TEST(TablePrinterTest, PrintsAlignedRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  ::testing::internal::CaptureStdout();
  table.Print();
  std::string output = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(output.find("| name  | value |"), std::string::npos);
  EXPECT_NE(output.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(output.find("| b     | 22222 |"), std::string::npos);
  EXPECT_NE(output.find("+-------+-------+"), std::string::npos);
}

}  // namespace
}  // namespace spine::bench
