// Differential open-path suite (PR 8): every persistent backend kind,
// saved once and reopened through the registry under BOTH open paths
// (heap copy and zero-copy mmap), must produce *identical* result
// streams — answers, error verdicts and SearchStats work counters — on
// a mixed batch over all four query kinds, on DNA and protein corpora.
// mmap-noverify (checksum skipped at open) rides along: on an intact
// artifact it must be indistinguishable from mmap.
//
// The harness lives in backend_agreement.h (SavePersistentArtifacts /
// RunBatch / ExpectIdenticalResults) so the kernel-matrix CI job can
// run this suite once per forced comparison kernel.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/registry.h"
#include "backend_agreement.h"
#include "test_util.h"

namespace spine::test {
namespace {

using core::BackendRegistry;
using core::OpenOptions;
using core::ParseOpenSpec;

struct Corpus {
  const char* name;
  Alphabet alphabet;
  std::string text;
};

std::vector<Corpus> TestCorpora() {
  Rng rng(20260808);
  std::vector<Corpus> corpora;
  corpora.push_back({"dna", Alphabet::Dna(), TestCorpus(20000, 7)});
  corpora.push_back({"protein", Alphabet::Protein(), RandomProtein(rng, 8000)});
  return corpora;
}

// The tentpole property: heap and mmap opens of the same artifact are
// observationally identical, per backend, per corpus, per query.
TEST(OpenPathDifferentialTest, HeapAndMmapAgreeOnEveryPersistentBackend) {
  for (const Corpus& corpus : TestCorpora()) {
    ScopedTempDir dir("open_path_" + std::string(corpus.name));
    std::vector<PersistentArtifact> artifacts;
    std::string error;
    ASSERT_TRUE(SavePersistentArtifacts(corpus.alphabet, corpus.text, dir,
                                        &artifacts, &error))
        << corpus.name << ": " << error;
    ASSERT_EQ(artifacts.size(), 5u);

    const std::vector<Query> queries = MixedQueries(corpus.text, 40);
    for (const PersistentArtifact& artifact : artifacts) {
      const std::string tag = std::string(corpus.name) + "/" + artifact.name;

      auto heap = BackendRegistry::Default().Open(artifact.path, {});
      ASSERT_TRUE(heap.ok()) << tag << ": " << heap.status().ToString();
      EXPECT_EQ((*heap)->open_mode(), "heap") << tag;
      const std::vector<QueryResult> heap_results =
          RunBatch(**heap, queries);

      for (const char* spec : {"mmap", "mmap-noverify"}) {
        Result<OpenOptions> options = ParseOpenSpec(spec);
        ASSERT_TRUE(options.ok());
        auto mapped = BackendRegistry::Default().Open(artifact.path, *options);
        ASSERT_TRUE(mapped.ok())
            << tag << "/" << spec << ": " << mapped.status().ToString();
        EXPECT_EQ((*mapped)->open_mode(), spec) << tag;
        EXPECT_EQ((*mapped)->kind(), (*heap)->kind()) << tag;
        EXPECT_EQ((*mapped)->size(), (*heap)->size()) << tag;
        ExpectIdenticalResults(heap_results, RunBatch(**mapped, queries),
                               queries, tag + "/" + spec);
        // Both paths reach the same clean structural verdict too.
        Status verify = (*mapped)->VerifyStructure();
        EXPECT_TRUE(verify.ok())
            << tag << "/" << spec << ": " << verify.ToString();
      }
    }
  }
}

// Both open paths must also agree with the ground truth, not merely
// with each other: the mmap-opened fleet joins the naive oracle in the
// standard agreement check.
TEST(OpenPathDifferentialTest, MmapBackendsAgreeWithOracle) {
  const std::string corpus = TestCorpus(15000, 11);
  ScopedTempDir dir;
  std::vector<PersistentArtifact> artifacts;
  std::string error;
  ASSERT_TRUE(SavePersistentArtifacts(Alphabet::Dna(), corpus, dir, &artifacts,
                                      &error))
      << error;

  core::NaiveTextAdapter oracle(Alphabet::Dna(), corpus);
  std::vector<std::unique_ptr<core::Index>> owned;
  std::vector<const core::Index*> indexes = {&oracle};
  Result<OpenOptions> mmap = ParseOpenSpec("mmap");
  ASSERT_TRUE(mmap.ok());
  for (const PersistentArtifact& artifact : artifacts) {
    auto opened = BackendRegistry::Default().Open(artifact.path, *mmap);
    ASSERT_TRUE(opened.ok())
        << artifact.name << ": " << opened.status().ToString();
    indexes.push_back(opened->get());
    owned.push_back(std::move(*opened));
  }
  ExpectAllBackendsAgree(indexes, MixedQueries(corpus, 40), "mmap-fleet");
}

// $SPINE_OPEN picks the registry's default open path; the CLI and the
// server inherit it. An index opened under it must report the spec.
TEST(OpenPathDifferentialTest, OpenModeIsReported) {
  const std::string corpus = TestCorpus(2000, 3);
  ScopedTempDir dir;
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(corpus).ok());
  ASSERT_TRUE(SaveCompactSpine(compact, dir.File("mode.spine")).ok());

  for (const char* spec : {"heap", "mmap", "mmap-noverify"}) {
    Result<OpenOptions> options = ParseOpenSpec(spec);
    ASSERT_TRUE(options.ok());
    auto opened =
        BackendRegistry::Default().Open(dir.File("mode.spine"), *options);
    ASSERT_TRUE(opened.ok()) << spec;
    EXPECT_EQ((*opened)->open_mode(), spec);
  }
  // Built-in-memory indexes have no open path at all.
  EXPECT_EQ(core::CompactSpineAdapter(compact).open_mode(), "built");
  EXPECT_FALSE(ParseOpenSpec("mmap-eager").ok());
  EXPECT_FALSE(ParseOpenSpec("").ok());
}

// OpenAs (--backend override) threads the open options exactly like
// the sniffing path.
TEST(OpenPathDifferentialTest, OpenAsHonorsOpenOptions) {
  const std::string corpus = TestCorpus(4000, 5);
  ScopedTempDir dir;
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(corpus).ok());
  ASSERT_TRUE(SaveCompactSpine(compact, dir.File("as.spine")).ok());

  Result<OpenOptions> mmap = ParseOpenSpec("mmap");
  ASSERT_TRUE(mmap.ok());
  auto opened = BackendRegistry::Default().OpenAs("compact",
                                                  dir.File("as.spine"), *mmap);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->open_mode(), "mmap");
  QueryResult result = (*opened)->Execute(Query::Contains(corpus.substr(9, 12)));
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.found);
}

}  // namespace
}  // namespace spine::test
