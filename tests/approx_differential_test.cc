// Differential suite for the approximate query surface: every backend
// must answer kMismatch and kEditDistance exactly like an independent
// brute-force O(n*m) oracle — one written here, on raw strings, sharing
// no code with the planner, the seed-and-extend path, or the naive
// scan fallback in core/approx.h. The grid covers:
//   - every in-memory backend in the BackendFleet, under every
//     supported comparison kernel;
//   - every persistent artifact kind reopened through the registry
//     under heap, mmap and mmap-noverify;
//   - DNA and protein corpora, budgets k in 0..4 and d in 0..3;
//   - k = 0 / d = 0 bit-identical to kFindAll;
//   - the edge cases: empty patterns, budget >= pattern length,
//     patterns too short to seed, out-of-alphabet pattern bytes,
//     shard-boundary straddles and the overlap-margin admission rule,
//     and deadline expiry mid-extend.

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/rng.h"
#include "core/adapters.h"
#include "core/index.h"
#include "core/query.h"
#include "core/registry.h"
#include "engine/query_engine.h"
#include "kernel/kernel.h"
#include "shard/sharded_index.h"

#include "backend_agreement.h"
#include "test_util.h"

namespace spine::test {
namespace {

using core::BackendRegistry;
using core::OpenOptions;
using core::ParseOpenSpec;

// --- the independent oracle ------------------------------------------------

// Full-table semi-global DP: fewest edits between `pattern` and any
// prefix of `window`, shortest prefix on ties. Deliberately NOT the
// banded align::BestPrefixEditDistance the product path uses.
std::optional<std::pair<uint32_t, uint32_t>> OracleBestPrefix(
    const std::string& pattern, const std::string& window,
    uint32_t max_edits) {
  const size_t m = pattern.size();
  const size_t w = window.size();
  std::vector<std::vector<uint32_t>> dp(m + 1,
                                        std::vector<uint32_t>(w + 1, 0));
  for (size_t j = 0; j <= w; ++j) dp[0][j] = static_cast<uint32_t>(j);
  for (size_t i = 1; i <= m; ++i) {
    dp[i][0] = static_cast<uint32_t>(i);
    for (size_t j = 1; j <= w; ++j) {
      const uint32_t sub =
          dp[i - 1][j - 1] + (pattern[i - 1] == window[j - 1] ? 0 : 1);
      dp[i][j] = std::min({sub, dp[i - 1][j] + 1, dp[i][j - 1] + 1});
    }
  }
  std::optional<std::pair<uint32_t, uint32_t>> best;
  for (size_t j = 0; j <= w; ++j) {  // ascending j: ties keep shortest
    if (dp[m][j] <= max_edits && (!best || dp[m][j] < best->first)) {
      best = {{dp[m][j], static_cast<uint32_t>(j)}};
    }
  }
  return best;
}

// Canonicalizes like the indexes do (DNA case folding); bytes outside
// the alphabet stay raw and never equal a canonical character.
std::string Canonical(const Alphabet& alphabet, const std::string& s) {
  std::string out(s);
  for (char& c : out) {
    const Code code = alphabet.Encode(c);
    if (code != kInvalidCode) c = alphabet.Decode(code);
  }
  return out;
}

std::vector<Hit> OracleMismatch(const Alphabet& alphabet,
                                const std::string& text,
                                const std::string& pattern, uint32_t k) {
  std::vector<Hit> hits;
  const size_t m = pattern.size();
  if (m == 0 || k >= m || text.size() < m) return hits;
  for (size_t start = 0; start + m <= text.size(); ++start) {
    uint32_t mm = 0;
    for (size_t i = 0; i < m && mm <= k; ++i) {
      if (alphabet.Encode(text[start + i]) != alphabet.Encode(pattern[i])) {
        ++mm;
      }
    }
    if (mm <= k) {
      hits.push_back({static_cast<uint32_t>(start),
                      static_cast<uint32_t>(m), mm});
    }
  }
  return hits;
}

std::vector<Hit> OracleEdit(const Alphabet& alphabet, const std::string& text,
                            const std::string& pattern, uint32_t d) {
  std::vector<Hit> hits;
  const size_t m = pattern.size();
  if (m == 0 || d >= m || text.empty()) return hits;
  const std::string canonical_pattern = Canonical(alphabet, pattern);
  const std::string canonical_text = Canonical(alphabet, text);
  for (size_t start = 0; start < text.size(); ++start) {
    const size_t limit = std::min(start + m + d, text.size());
    const std::string window = canonical_text.substr(start, limit - start);
    if (window.size() + d < m) continue;  // too close to the end
    const auto best = OracleBestPrefix(canonical_pattern, window, d);
    if (best.has_value()) {
      hits.push_back({static_cast<uint32_t>(start), best->second,
                      best->first});
    }
  }
  return hits;
}

std::vector<Hit> OracleApprox(const Alphabet& alphabet,
                              const std::string& text, const Query& query) {
  return query.kind == QueryKind::kMismatch
             ? OracleMismatch(alphabet, text, query.pattern,
                              query.max_errors)
             : OracleEdit(alphabet, text, query.pattern, query.max_errors);
}

// --- the query grid --------------------------------------------------------

// Approximate queries over one corpus: exact slices (k=0/d=0), slices
// perturbed by substitutions / indels up to the budget, and random
// near-misses. k in 0..4, d in 0..3, every budget represented.
std::vector<Query> ApproxQueries(const std::string& corpus, Rng& rng) {
  const auto corpus_char = [&] {
    return corpus[rng.Below(corpus.size())];
  };
  const auto slice = [&](size_t len) {
    return corpus.substr(rng.Below(corpus.size() - len), len);
  };
  std::vector<Query> queries;
  for (uint32_t k = 0; k <= 4; ++k) {
    std::string pattern = slice(8 + 3 * k);
    for (uint32_t s = 0; s < k; ++s) {  // k substitutions: a planted hit
      pattern[rng.Below(pattern.size())] = corpus_char();
    }
    queries.push_back(Query::Mismatch(pattern, k));
    queries.push_back(Query::Mismatch(slice(6 + k), k));  // unperturbed
  }
  for (uint32_t d = 0; d <= 3; ++d) {
    std::string pattern = slice(9 + 4 * d);
    for (uint32_t e = 0; e < d; ++e) {  // mixed edits: a planted hit
      const size_t at = rng.Below(pattern.size());
      switch (rng.Below(3)) {
        case 0: pattern[at] = corpus_char(); break;
        case 1: pattern.insert(at, 1, corpus_char()); break;
        default: pattern.erase(at, 1); break;
      }
    }
    queries.push_back(Query::EditDistance(pattern, d));
    queries.push_back(Query::EditDistance(slice(7 + d), d));
  }
  // Random patterns: mostly misses, occasionally lucky near-hits.
  for (uint32_t i = 0; i < 4; ++i) {
    std::string pattern;
    for (uint32_t j = 0; j < 10; ++j) pattern.push_back(corpus_char());
    queries.push_back(i % 2 == 0 ? Query::Mismatch(pattern, 2)
                                 : Query::EditDistance(pattern, 2));
  }
  return queries;
}

// Restores kernel auto-selection however a test exits.
struct KernelRestore {
  ~KernelRestore() { (void)kernel::ForceByName("auto"); }
};

void ExpectMatchesOracle(const core::Index& index, const Alphabet& alphabet,
                         const std::string& corpus,
                         const std::vector<Query>& queries,
                         const std::string& tag) {
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& query = queries[i];
    if (!index.capabilities().Supports(query.kind)) continue;
    const QueryResult result = index.Execute(query);
    ASSERT_TRUE(result.ok())
        << tag << ": query " << i << " failed: " << result.error;
    const std::vector<Hit> expected = OracleApprox(alphabet, corpus, query);
    EXPECT_EQ(result.hits, expected)
        << tag << ": hits diverge from the oracle on query " << i << " ("
        << QueryKindName(query.kind) << ":" << query.max_errors
        << " pattern \"" << query.pattern << "\")";
    EXPECT_EQ(result.found, !expected.empty()) << tag << ": query " << i;
  }
}

// --- the differential grids ------------------------------------------------

// Every in-memory backend (and the naive adapter, itself a second
// independent implementation), under every supported kernel, on DNA
// and protein corpora.
TEST(ApproxDifferentialTest, FleetMatchesOracleUnderEveryKernel) {
  KernelRestore restore;
  struct Corpus {
    const char* name;
    Alphabet alphabet;
    std::string text;
  };
  Rng rng(20260808);
  const std::vector<Corpus> corpora = {
      {"dna", Alphabet::Dna(), TestCorpus(8000, 7)},
      {"protein", Alphabet::Protein(), RandomProtein(rng, 5000)},
  };
  for (const Corpus& corpus : corpora) {
    BackendFleet fleet(corpus.alphabet, corpus.text);
    ASSERT_TRUE(fleet.ok()) << fleet.error();
    Rng query_rng(corpus.text.size());
    const std::vector<Query> queries = ApproxQueries(corpus.text, query_rng);
    for (const kernel::Kind kind : kernel::SupportedKinds()) {
      ASSERT_TRUE(kernel::Force(kind).ok());
      for (const core::Index* index : fleet.indexes()) {
        ExpectMatchesOracle(
            *index, corpus.alphabet, corpus.text, queries,
            std::string(corpus.name) + "/" +
                std::string(core::IndexKindName(index->kind())) +
                "/kernel=" + std::string(kernel::KindName(kind)));
      }
    }
  }
}

// Every persistent artifact kind, reopened through the registry under
// every open path, under every kernel.
TEST(ApproxDifferentialTest, PersistentBackendsMatchOracleOnEveryOpenPath) {
  KernelRestore restore;
  const std::string corpus = TestCorpus(8000, 13);
  ScopedTempDir dir;
  std::vector<PersistentArtifact> artifacts;
  std::string error;
  ASSERT_TRUE(SavePersistentArtifacts(Alphabet::Dna(), corpus, dir,
                                      &artifacts, &error))
      << error;

  Rng rng(99);
  const std::vector<Query> queries = ApproxQueries(corpus, rng);
  for (const kernel::Kind kind : kernel::SupportedKinds()) {
    ASSERT_TRUE(kernel::Force(kind).ok());
    for (const PersistentArtifact& artifact : artifacts) {
      for (const char* spec : {"heap", "mmap", "mmap-noverify"}) {
        Result<OpenOptions> options = ParseOpenSpec(spec);
        ASSERT_TRUE(options.ok());
        auto opened = BackendRegistry::Default().Open(artifact.path, *options);
        ASSERT_TRUE(opened.ok())
            << artifact.name << "/" << spec << ": "
            << opened.status().ToString();
        ExpectMatchesOracle(**opened, Alphabet::Dna(), corpus, queries,
                            artifact.name + "/" + spec + "/kernel=" +
                                std::string(kernel::KindName(kind)));
      }
    }
  }
}

// A zero budget is exact search: the hit stream must be bit-identical
// to kFindAll — positions, lengths and the zeroed error field.
TEST(ApproxDifferentialTest, ZeroBudgetIsBitIdenticalToFindAll) {
  const std::string corpus = TestCorpus(4000, 21);
  BackendFleet fleet(Alphabet::Dna(), corpus);
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  const std::vector<std::string> patterns = {
      corpus.substr(100, 12), corpus.substr(777, 8), corpus.substr(1, 30),
      "TTTTTTTTTTTTGGGGGGACGT",  // almost surely absent
  };
  for (const core::Index* index : fleet.indexes()) {
    const std::string tag(core::IndexKindName(index->kind()));
    for (const std::string& pattern : patterns) {
      if (!index->capabilities().Supports(QueryKind::kMismatch)) continue;
      const QueryResult exact = index->Execute(Query::FindAll(pattern));
      const QueryResult mismatch =
          index->Execute(Query::Mismatch(pattern, 0));
      const QueryResult edit =
          index->Execute(Query::EditDistance(pattern, 0));
      ASSERT_TRUE(exact.ok() && mismatch.ok() && edit.ok()) << tag;
      EXPECT_EQ(mismatch.hits, exact.hits) << tag << " \"" << pattern << "\"";
      EXPECT_EQ(edit.hits, exact.hits) << tag << " \"" << pattern << "\"";
      EXPECT_EQ(mismatch.found, exact.found) << tag;
      EXPECT_EQ(edit.found, exact.found) << tag;
    }
  }
}

// --- edge cases ------------------------------------------------------------

// Empty patterns and budget >= pattern length are degenerate, not
// errors: every window qualifies vacuously, which the query surface
// defines as an empty kOk answer — on every backend, including the
// sharded family (whose admission check must not fire first).
TEST(ApproxDifferentialTest, DegenerateBudgetsYieldEmptyOk) {
  const std::string corpus = TestCorpus(3000, 5);
  BackendFleet fleet(Alphabet::Dna(), corpus);
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  const std::vector<Query> degenerate = {
      Query::Mismatch("", 0),
      Query::EditDistance("", 2),
      Query::Mismatch("ACG", 3),       // k == m
      Query::Mismatch("ACG", 7),       // k > m
      Query::EditDistance("ACGT", 4),  // d == m
      Query::EditDistance("AC", 1000000000),
  };
  for (const core::Index* index : fleet.indexes()) {
    for (const Query& query : degenerate) {
      if (!index->capabilities().Supports(query.kind)) continue;
      const QueryResult result = index->Execute(query);
      const std::string tag =
          std::string(core::IndexKindName(index->kind())) + " " +
          std::string(QueryKindName(query.kind)) + ":" +
          std::to_string(query.max_errors) + " \"" + query.pattern + "\"";
      EXPECT_EQ(result.status_code, StatusCode::kOk) << tag;
      EXPECT_TRUE(result.hits.empty()) << tag;
      EXPECT_FALSE(result.found) << tag;
    }
  }
}

// A pattern with fewer than budget+1 seedable characters per piece
// cannot use the seed path (the planner refuses seeds shorter than its
// floor); the scan fallback must still produce oracle answers.
TEST(ApproxDifferentialTest, PatternsTooShortToSeedStillMatchOracle) {
  const std::string corpus = TestCorpus(3000, 17);
  BackendFleet fleet(Alphabet::Dna(), corpus);
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  const std::vector<Query> queries = {
      Query::Mismatch(corpus.substr(40, 4), 2),      // pieces of length 1
      Query::Mismatch(corpus.substr(500, 5), 3),     // 4 pieces over 5 chars
      Query::EditDistance(corpus.substr(60, 4), 2),  // window 6, seeds of 1
      Query::EditDistance(corpus.substr(900, 5), 3),
  };
  for (const core::Index* index : fleet.indexes()) {
    ExpectMatchesOracle(*index, Alphabet::Dna(), corpus, queries,
                        std::string(core::IndexKindName(index->kind())) +
                            "/short-pattern");
  }
}

// Out-of-alphabet pattern bytes never match any indexed character:
// they consume budget at their position (mismatch) or force an edit,
// exactly as the oracle computes.
TEST(ApproxDifferentialTest, OutOfAlphabetPatternBytesMatchOracle) {
  const std::string corpus = TestCorpus(3000, 29);
  BackendFleet fleet(Alphabet::Dna(), corpus);
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  std::string one_bad = corpus.substr(120, 12);
  one_bad[5] = '#';
  std::string two_bad = corpus.substr(840, 14);
  two_bad[0] = '!';
  two_bad[13] = '?';
  const std::vector<Query> queries = {
      Query::Mismatch(one_bad, 1),  // the '#' spends the whole budget
      Query::Mismatch(one_bad, 0),  // no budget: can never match
      Query::Mismatch(two_bad, 2),
      Query::EditDistance(one_bad, 1),
      Query::EditDistance(two_bad, 2),
  };
  for (const core::Index* index : fleet.indexes()) {
    ExpectMatchesOracle(*index, Alphabet::Dna(), corpus, queries,
                        std::string(core::IndexKindName(index->kind())) +
                            "/out-of-alphabet");
  }
}

// Shard families: hits straddling a shard-core boundary come from the
// overlap margin, and the admission rule accounts for the edit-widened
// window (m + d), not the bare pattern length.
TEST(ApproxDifferentialTest, ShardBoundaryStraddlesAndMarginAdmission) {
  const std::string corpus = TestCorpus(2000, 31);
  auto family = shard::ShardedIndex::Build(Alphabet::Dna(), corpus,
                                           {.shards = 4, .max_pattern = 16});
  ASSERT_TRUE(family.ok()) << family.status().ToString();

  // Patterns planted across the approximate core boundaries (n/4
  // apart), perturbed so only the approximate kinds can find them.
  std::vector<Query> straddling;
  for (const size_t boundary : {corpus.size() / 4, corpus.size() / 2,
                                3 * corpus.size() / 4}) {
    std::string pattern = corpus.substr(boundary - 6, 12);
    pattern[6] = pattern[6] == 'A' ? 'C' : 'A';
    straddling.push_back(Query::Mismatch(pattern, 1));
    straddling.push_back(Query::EditDistance(pattern, 1));
  }
  for (size_t i = 0; i < straddling.size(); ++i) {
    const Query& query = straddling[i];
    const QueryResult result = (*family)->Execute(query);
    ASSERT_TRUE(result.ok()) << i << ": " << result.error;
    EXPECT_EQ(result.hits, OracleApprox(Alphabet::Dna(), corpus, query))
        << "straddle query " << i << " (pattern \"" << query.pattern
        << "\")";
    EXPECT_TRUE(result.found) << "planted straddle hit missing, query " << i;
  }

  // Admission: a mismatch window is the pattern length; an edit window
  // is m + d. Both must fit the overlap margin (max_pattern = 16).
  const std::string p14 = corpus.substr(3, 14);
  const std::string p15 = corpus.substr(3, 15);
  const std::string p16 = corpus.substr(3, 16);
  const std::string p17 = corpus.substr(3, 17);
  EXPECT_TRUE((*family)->Execute(Query::Mismatch(p16, 2)).ok());
  EXPECT_TRUE((*family)->Execute(Query::EditDistance(p14, 2)).ok());
  const QueryResult too_wide_mm =
      (*family)->Execute(Query::Mismatch(p17, 2));
  EXPECT_EQ(too_wide_mm.status_code, StatusCode::kInvalidArgument);
  EXPECT_NE(too_wide_mm.error.find("overlap margin"), std::string::npos)
      << too_wide_mm.error;
  const QueryResult too_wide_edit =
      (*family)->Execute(Query::EditDistance(p15, 2));
  EXPECT_EQ(too_wide_edit.status_code, StatusCode::kInvalidArgument);
  EXPECT_NE(too_wide_edit.error.find("overlap margin"), std::string::npos)
      << too_wide_edit.error;
  // The same pattern with a smaller edit budget fits again.
  EXPECT_TRUE((*family)->Execute(Query::EditDistance(p15, 1)).ok());
}

// An expired deadline yields kDeadlineExceeded with no payload — never
// partial hits reported as kOk — even when it fires mid-extend.
TEST(ApproxDifferentialTest, ExpiredDeadlineYieldsDeadlineNotPartialHits) {
  const std::string corpus = TestCorpus(6000, 37);
  BackendFleet fleet(Alphabet::Dna(), corpus);
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  std::string pattern = corpus.substr(50, 16);
  pattern[8] = pattern[8] == 'A' ? 'C' : 'A';
  for (const core::Index* index : fleet.indexes()) {
    if (!index->capabilities().Supports(QueryKind::kMismatch)) continue;
    for (const Query& query :
         {Query::Mismatch(pattern, 2), Query::EditDistance(pattern, 2)}) {
      const CancelToken expired{Deadline::AfterMicros(0)};
      const QueryResult result = index->Execute(query, nullptr, &expired);
      const std::string tag =
          std::string(core::IndexKindName(index->kind())) + "/" +
          std::string(QueryKindName(query.kind));
      EXPECT_EQ(result.status_code, StatusCode::kDeadlineExceeded) << tag;
      EXPECT_TRUE(result.hits.empty()) << tag;
      EXPECT_FALSE(result.found) << tag;
    }
  }
}

// The engine's cache key must include the error budget: the same
// pattern under different budgets is a different query, never a stale
// cache hit.
TEST(ApproxDifferentialTest, CacheKeysDistinguishErrorBudgets) {
  const std::string corpus = TestCorpus(4000, 41);
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(corpus).ok());
  const core::CompactSpineAdapter adapter(compact);

  std::string pattern = corpus.substr(200, 12);
  pattern[6] = pattern[6] == 'A' ? 'C' : 'A';  // 1-mismatch planted hit
  engine::QueryEngine engine({.threads = 2, .cache_bytes = 1 << 20});
  const std::vector<Query> queries = {
      Query::Mismatch(pattern, 0), Query::Mismatch(pattern, 1),
      Query::Mismatch(pattern, 1),  // a genuine repeat MAY hit the cache
      Query::EditDistance(pattern, 0), Query::EditDistance(pattern, 1),
  };
  const std::vector<QueryResult> results =
      engine.ExecuteBatch(adapter, queries);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[i].hits,
              OracleApprox(Alphabet::Dna(), corpus, queries[i]))
        << "query " << i;
  }
  // The planted hit separates the budgets: invisible at 0, found at 1.
  EXPECT_TRUE(results[0].hits.empty());
  EXPECT_FALSE(results[1].hits.empty());
  EXPECT_EQ(results[2].hits, results[1].hits);
}

}  // namespace
}  // namespace spine::test
