// Tests for the alignment module: edit distance, anchor chaining,
// the SPINE-anchored aligner, and approximate matching — plus the tie
// between the align-module seed-and-extend and the core kEditDistance
// query kind: same corpora (tests/test_util.h), same answers, and the
// approx.* / core.* registry counters move exactly with the
// SearchStats the queries report.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "align/aligner.h"
#include "align/approximate.h"
#include "align/chainer.h"
#include "align/edit_distance.h"
#include "common/rng.h"
#include "core/query.h"
#include "seq/generator.h"
#include "test_util.h"

namespace spine::align {
namespace {

using spine::test::RandomString;
using spine::test::RegistryDelta;
using spine::test::TestCorpus;

// ---------------------------------------------------------------------
// Edit distance.
// ---------------------------------------------------------------------

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("ACGT", "ACGT"), 0u);
  EXPECT_EQ(EditDistance("ACGT", "AGT"), 1u);
  EXPECT_EQ(EditDistance("ACGT", "TGCA"), 4u);
}

TEST(EditDistanceTest, BandedAgreesWithFullWithinBudget) {
  Rng rng(42);
  for (int round = 0; round < 300; ++round) {
    uint32_t la = static_cast<uint32_t>(rng.Below(30));
    uint32_t lb = static_cast<uint32_t>(rng.Below(30));
    const std::string a = RandomString(rng, la, 3);
    const std::string b = RandomString(rng, lb, 3);
    uint32_t truth = EditDistance(a, b);
    for (uint32_t budget : {0u, 1u, 2u, 5u, 30u}) {
      auto banded = BandedEditDistance(a, b, budget);
      if (truth <= budget) {
        ASSERT_TRUE(banded.has_value()) << a << " vs " << b << " @" << budget;
        ASSERT_EQ(*banded, truth) << a << " vs " << b << " @" << budget;
      } else {
        ASSERT_FALSE(banded.has_value()) << a << " vs " << b << " @" << budget;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Chaining.
// ---------------------------------------------------------------------

TEST(ChainerTest, EmptyAndSingle) {
  EXPECT_EQ(BestChain({}).score, 0u);
  Chain single = BestChain({{5, 9, 7}});
  EXPECT_EQ(single.score, 7u);
  ASSERT_EQ(single.anchors.size(), 1u);
  EXPECT_EQ(single.anchors[0], (Anchor{5, 9, 7}));
}

TEST(ChainerTest, PicksCollinearSubset) {
  // Two collinear anchors plus one crossing anchor that would break
  // monotonicity; the chain takes the collinear pair.
  std::vector<Anchor> anchors = {
      {0, 0, 10},    // collinear
      {20, 20, 10},  // collinear
      {12, 2, 11},   // crossing (data runs backwards relative to query)
  };
  Chain chain = BestChain(anchors);
  EXPECT_EQ(chain.score, 20u);
  ASSERT_EQ(chain.anchors.size(), 2u);
  EXPECT_EQ(chain.anchors[0].query_pos, 0u);
  EXPECT_EQ(chain.anchors[1].query_pos, 20u);
}

TEST(ChainerTest, RejectsOverlaps) {
  // Overlapping anchors cannot both be used.
  std::vector<Anchor> anchors = {{0, 0, 10}, {5, 5, 10}};
  Chain chain = BestChain(anchors);
  EXPECT_EQ(chain.score, 10u);
  EXPECT_EQ(chain.anchors.size(), 1u);
}

// Brute-force best chain over all subsets (small k only).
uint64_t BruteBestChain(const std::vector<Anchor>& anchors) {
  const size_t k = anchors.size();
  uint64_t best = 0;
  for (uint32_t mask = 0; mask < (1u << k); ++mask) {
    std::vector<Anchor> subset;
    for (size_t i = 0; i < k; ++i) {
      if (mask & (1u << i)) subset.push_back(anchors[i]);
    }
    std::sort(subset.begin(), subset.end(),
              [](const Anchor& a, const Anchor& b) {
                return a.query_pos < b.query_pos;
              });
    bool valid = true;
    uint64_t score = 0;
    for (size_t i = 0; i < subset.size(); ++i) {
      score += subset[i].length;
      if (i > 0) {
        const Anchor& p = subset[i - 1];
        const Anchor& c = subset[i];
        if (p.query_pos + p.length > c.query_pos ||
            p.data_pos + p.length > c.data_pos) {
          valid = false;
          break;
        }
      }
    }
    if (valid) best = std::max(best, score);
  }
  return best;
}

TEST(ChainerTest, BoundedOverlapChainsAndTrims) {
  // Two long anchors overlapping by one character: strict chaining must
  // pick one; with max_overlap they chain and the later one is trimmed.
  std::vector<Anchor> anchors = {{0, 0, 101}, {300, 100, 100}};
  Chain strict = BestChain(anchors);
  EXPECT_EQ(strict.score, 101u);
  Chain relaxed = BestChain(anchors, /*max_overlap=*/8);
  ASSERT_EQ(relaxed.anchors.size(), 2u);
  EXPECT_EQ(relaxed.raw_score, 201u);
  EXPECT_EQ(relaxed.score, 200u);  // one base trimmed off the second
  EXPECT_EQ(relaxed.anchors[1].data_pos, 101u);
  EXPECT_EQ(relaxed.anchors[1].length, 99u);
  // Trimmed chains are strictly non-overlapping.
  EXPECT_LE(relaxed.anchors[0].data_pos + relaxed.anchors[0].length,
            relaxed.anchors[1].data_pos);
  // Overlap beyond the bound still refuses to chain.
  std::vector<Anchor> heavy = {{0, 0, 120}, {300, 100, 100}};
  Chain refused = BestChain(heavy, /*max_overlap=*/8);
  EXPECT_EQ(refused.score, 120u);
}

TEST(ChainerTest, TrimDropsFullyConsumedAnchors) {
  // A tiny anchor entirely inside the first one's span gets dropped.
  std::vector<Anchor> anchors = {{0, 0, 50}, {100, 45, 5}, {200, 200, 40}};
  Chain chain = BestChain(anchors, /*max_overlap=*/8);
  // Whatever the DP picks, the emission is valid and covers the two
  // big anchors' material.
  EXPECT_GE(chain.score, 90u);
  for (size_t i = 1; i < chain.anchors.size(); ++i) {
    EXPECT_LE(chain.anchors[i - 1].data_pos + chain.anchors[i - 1].length,
              chain.anchors[i].data_pos);
  }
}

TEST(ChainerTest, OptimalAgainstBruteForce) {
  Rng rng(17);
  for (int round = 0; round < 200; ++round) {
    uint32_t k = 1 + static_cast<uint32_t>(rng.Below(10));
    std::vector<Anchor> anchors;
    for (uint32_t i = 0; i < k; ++i) {
      anchors.push_back({static_cast<uint32_t>(rng.Below(60)),
                         static_cast<uint32_t>(rng.Below(60)),
                         1 + static_cast<uint32_t>(rng.Below(12))});
    }
    Chain chain = BestChain(anchors);
    ASSERT_EQ(chain.score, BruteBestChain(anchors)) << "round " << round;
    // Score equals the sum of chosen lengths.
    uint64_t total = 0;
    for (const Anchor& a : chain.anchors) total += a.length;
    ASSERT_EQ(total, chain.score);
  }
}

// ---------------------------------------------------------------------
// Aligner.
// ---------------------------------------------------------------------

TEST(AlignerTest, PerfectCopyAlignsCompletely) {
  const std::string genome = TestCorpus(20000, 9);
  Result<AlignmentResult> result = AlignSequences(genome, genome);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->anchored_bases, genome.size());
  EXPECT_EQ(result->gap_edits, 0u);
  EXPECT_DOUBLE_EQ(result->Identity(), 1.0);
  EXPECT_DOUBLE_EQ(result->QueryCoverage(genome.size()), 1.0);
}

TEST(AlignerTest, DivergentStrainAlignsWithHighIdentity) {
  const std::string genome = TestCorpus(40000, 10);
  seq::MutateOptions mut;
  mut.seed = 11;
  mut.substitution_rate = 0.01;
  std::string strain = seq::MutateCopy(Alphabet::Dna(), genome, mut);

  Result<AlignmentResult> result = AlignSequences(genome, strain);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->QueryCoverage(strain.size()), 0.9);
  EXPECT_GT(result->Identity(), 0.90);
  EXPECT_GT(result->chain.anchors.size(), 10u);
}

TEST(AlignerTest, UnrelatedSequencesBarelyAlign) {
  const std::string a = TestCorpus(20000, 12);
  const std::string b = TestCorpus(20000, 13);
  AlignOptions options;
  options.min_anchor_len = 24;  // random 24-mers almost never collide
  Result<AlignmentResult> result = AlignSequences(a, b, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->QueryCoverage(b.size()), 0.1);
}

TEST(AlignerTest, UniqueAnchorModeDropsRepeatedAnchors) {
  const std::string data = "AAACCCGGGTTTAAACCC";
  AlignOptions options;
  options.min_anchor_len = 6;
  options.unique_anchors_only = true;
  // "AAACCC" occurs twice in the data: not a MUM, dropped.
  Result<AlignmentResult> repeated = AlignSequences(data, "AAACCC", options);
  ASSERT_TRUE(repeated.ok());
  EXPECT_EQ(repeated->anchored_bases, 0u);
  // "GGGTTT" occurs once: kept.
  Result<AlignmentResult> unique = AlignSequences(data, "GGGTTT", options);
  ASSERT_TRUE(unique.ok());
  EXPECT_EQ(unique->anchored_bases, 6u);
}

// ---------------------------------------------------------------------
// Approximate matching.
// ---------------------------------------------------------------------

std::vector<ApproximateHit> BruteApproximate(const std::string& text,
                                             const std::string& pattern,
                                             uint32_t max_edits) {
  std::vector<ApproximateHit> hits;
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  for (uint32_t s = 0; s < text.size(); ++s) {
    uint32_t best_edits = max_edits + 1;
    uint32_t best_len = 0;
    uint32_t max_len =
        std::min<uint32_t>(m + max_edits, static_cast<uint32_t>(text.size()) - s);
    for (uint32_t len = 0; len <= max_len; ++len) {
      uint32_t d = EditDistance(pattern, std::string_view(text).substr(s, len));
      if (d < best_edits) {
        best_edits = d;
        best_len = len;
      }
    }
    if (best_edits <= max_edits) hits.push_back({s, best_len, best_edits});
  }
  return hits;
}

TEST(ApproximateTest, ExactMatchesAreZeroEditHits) {
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("ACGTACGTACGT").ok());
  auto hits = FindApproximate(index, "GTAC", 0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (ApproximateHit{2, 4, 0}));
  EXPECT_EQ(hits[1], (ApproximateHit{6, 4, 0}));
}

TEST(ApproximateTest, FindsSubstitutedOccurrences) {
  //                 0123456789
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("AAAATCGAAAA").ok());
  // "TAGA" matches "TCGA" at position 4 with 1 substitution.
  auto hits = FindApproximate(index, "TAGA", 1);
  bool found = false;
  for (const auto& hit : hits) {
    if (hit.data_pos == 4 && hit.edits == 1) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(FindApproximate(index, "TAGA", 0).empty());
}

TEST(ApproximateTest, DegenerateInputs) {
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString("ACGT").ok());
  EXPECT_TRUE(FindApproximate(index, "", 1).empty());
  EXPECT_TRUE(FindApproximate(index, "AC", 2).empty());  // k >= |pattern|
  CompactSpineIndex empty(Alphabet::Dna());
  EXPECT_TRUE(FindApproximate(empty, "ACG", 1).empty());
}

TEST(ApproximateTest, MatchesBruteForceOracle) {
  Rng rng(23);
  for (int round = 0; round < 40; ++round) {
    uint32_t n = 30 + static_cast<uint32_t>(rng.Below(120));
    const std::string text = RandomString(rng, n, 3);
    CompactSpineIndex index(Alphabet::Dna());
    ASSERT_TRUE(index.AppendString(text).ok());
    for (int trial = 0; trial < 8; ++trial) {
      uint32_t m = 5 + static_cast<uint32_t>(rng.Below(10));
      std::string pattern;
      if (trial % 2 == 0 && m < n) {
        pattern = text.substr(rng.Below(n - m), m);
      } else {
        pattern = RandomString(rng, m, 3);
      }
      uint32_t k = static_cast<uint32_t>(rng.Below(3));
      if (k >= pattern.size()) continue;
      auto got = FindApproximate(index, pattern, k);
      auto want = BruteApproximate(text, pattern, k);
      ASSERT_EQ(got.size(), want.size())
          << "text=" << text << " pattern=" << pattern << " k=" << k;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i].data_pos, want[i].data_pos);
        ASSERT_EQ(got[i].edits, want[i].edits);
      }
    }
  }
}

// The align-module seed-and-extend and the core kEditDistance kind
// (through ExecuteQuery) answer from the same structure with the same
// best-per-start contract (fewest edits, then shortest window) and
// must agree triple for triple — and the query path must leave an
// exact trail in the metrics registry: one routing decision per
// query, one approx.verified per hit, and Table-6 work counters equal
// to the summed SearchStats.
TEST(ApproximateTest, AgreesWithCoreEditKindAndRecordsMetrics) {
  Rng rng(777);
  const std::string corpus = TestCorpus(6000, 19);
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(corpus).ok());

  RegistryDelta delta;
  SearchStats expected;
  uint64_t queries = 0;
  uint64_t total_hits = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t m = 10 + static_cast<uint32_t>(rng.Below(10));
    const uint32_t start =
        static_cast<uint32_t>(rng.Below(corpus.size() - m - 4));
    std::string pattern = corpus.substr(start, m);
    const uint32_t d = static_cast<uint32_t>(rng.Below(3));
    // Perturb up to d characters (substitute / insert / erase) so
    // inexact hits actually occur.
    for (uint32_t e = 0; e < d; ++e) {
      const uint32_t at = static_cast<uint32_t>(rng.Below(pattern.size()));
      switch (rng.Below(3)) {
        case 0: pattern[at] = "ACGT"[rng.Below(4)]; break;
        case 1: pattern.insert(at, 1, "ACGT"[rng.Below(4)]); break;
        default: pattern.erase(at, 1); break;
      }
    }

    QueryResult result = ExecuteQuery(index, Query::EditDistance(pattern, d));
    ASSERT_TRUE(result.ok()) << result.error;
    expected.Add(result.stats);
    ++queries;
    total_hits += result.hits.size();

    const std::vector<ApproximateHit> seeded =
        FindApproximate(index, pattern, d);
    ASSERT_EQ(result.hits.size(), seeded.size()) << "d=" << d;
    for (size_t i = 0; i < seeded.size(); ++i) {
      EXPECT_EQ(result.hits[i].pos, seeded[i].data_pos);
      EXPECT_EQ(result.hits[i].length, seeded[i].length);
      EXPECT_EQ(result.hits[i].query_pos, seeded[i].edits);
    }
  }
  EXPECT_GT(total_hits, 0u);

  SPINE_SKIP_IF_OBS_DISABLED();
  // FindApproximate is not a query: only the ExecuteQuery half of the
  // loop shows up in the registry.
  EXPECT_EQ(delta.Counter("core.queries.editdist"), queries);
  EXPECT_EQ(delta.Counter("approx.seeded") + delta.Counter("approx.scanned"),
            queries);
  EXPECT_EQ(delta.Counter("approx.verified"), total_hits);
  EXPECT_GE(delta.Counter("approx.candidates"),
            delta.Counter("approx.verified"));
  EXPECT_EQ(delta.Counter("core.vertebra_steps"), expected.nodes_checked);
  EXPECT_GT(expected.nodes_checked, 0u);
}

}  // namespace
}  // namespace spine::align
