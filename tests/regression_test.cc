// Regression and cross-implementation fuzz tests.
#include <fstream>
#include <sstream>
//
// Contains the exact counterexample that exposed the paper's extrib
// parent-identification ambiguity (DESIGN.md §5), plus randomized
// sweeps asserting that the reference, compact and disk-resident
// implementations stay in lock-step with each other and with the
// brute-force oracle, including under interleaved append/query usage.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compact/compact_spine.h"
#include "compact/serializer.h"
#include "core/matcher.h"
#include "core/search.h"
#include "core/spine_index.h"
#include "naive/naive_index.h"
#include "seq/generator.h"
#include "storage/disk_spine.h"
#include "suffix_tree/st_matcher.h"
#include "suffix_tree/suffix_tree.h"

namespace spine {
namespace {

// The string where PRT-only extrib identification first went wrong:
// after appending the final 'A', ribs at nodes 7 and 12 (both CL 'A',
// both PT 4) share the extrib chain through node 16, and the paper's
// matching rule binds node 28's extrib to the wrong rib, yielding
// LEL(35) = 6 instead of the true 5 (a false positive for "CCCACA").
TEST(RegressionTest, PrtCollisionCounterexample) {
  const std::string s = "AAACCCCCCCACCACACACACAAAAACACCCCACA";
  SpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(s).ok());

  // The colliding ribs exist exactly as the analysis says.
  const SpineIndex::Rib* rib7 = index.FindRib(7, index.alphabet().Encode('A'));
  const SpineIndex::Rib* rib12 =
      index.FindRib(12, index.alphabet().Encode('A'));
  ASSERT_NE(rib7, nullptr);
  ASSERT_NE(rib12, nullptr);
  EXPECT_EQ(rib7->pt, rib12->pt) << "the PT collision must exist";
  EXPECT_NE(rib7->dest, rib12->dest);

  // With the (parent_dest, PRT) fix, LEL(35) is correct: "CCCACA" (the
  // length-6 suffix) does NOT occur ending before position 35, so the
  // longest early suffix is "CCACA" (length 5). The broken rule made
  // FindAll report a phantom second occurrence.
  EXPECT_EQ(index.LinkLel(35), naive::LongestEarlierSuffix(s, 35));
  EXPECT_EQ(index.LinkLel(35), 5u);
  EXPECT_EQ(index.FindAll("CCCACA"), naive::FindAllOccurrences(s, "CCCACA"));
  EXPECT_EQ(index.FindAll("CCCACA").size(), 1u);

  // The compact layout inherits the fix.
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(s).ok());
  EXPECT_EQ(compact.LinkLel(35), 5u);
  EXPECT_EQ(compact.FindAll("CCCACA").size(), 1u);
}

// Interleaved appends and queries: SPINE is online, so searching
// between appends must reflect exactly the current prefix.
TEST(RegressionTest, OnlineInterleavedAppendsAndQueries) {
  Rng rng(606);
  const char* letters = "ACGT";
  for (int round = 0; round < 30; ++round) {
    uint32_t sigma = 2 + static_cast<uint32_t>(rng.Below(3));
    uint32_t total = 20 + static_cast<uint32_t>(rng.Below(120));
    std::string s;
    SpineIndex reference(Alphabet::Dna());
    CompactSpineIndex compact(Alphabet::Dna());
    for (uint32_t i = 0; i < total; ++i) {
      char c = letters[rng.Below(sigma)];
      s.push_back(c);
      ASSERT_TRUE(reference.Append(c).ok());
      ASSERT_TRUE(compact.Append(c).ok());
      if (i % 7 == 3) {
        // Query the current prefix.
        uint32_t start = static_cast<uint32_t>(rng.Below(s.size()));
        uint32_t len = 1 + static_cast<uint32_t>(
                               rng.Below(std::min<size_t>(8, s.size() - start)));
        std::string pattern = s.substr(start, len);
        auto want = naive::FindAllOccurrences(s, pattern);
        ASSERT_EQ(reference.FindAll(pattern), want)
            << "prefix " << s << " pattern " << pattern;
        ASSERT_EQ(compact.FindAll(pattern), want)
            << "prefix " << s << " pattern " << pattern;
      }
    }
  }
}

// Three-way sweep: reference == compact == disk on random strings over
// all three alphabets, via the shared generic search templates.
TEST(RegressionTest, ThreeImplementationSweep) {
  Rng rng(1234);
  const std::string letters = "ACGTWYKLMN hgt.";
  for (int round = 0; round < 10; ++round) {
    Alphabet alphabet = round % 3 == 0
                            ? Alphabet::Dna()
                            : (round % 3 == 1 ? Alphabet::Protein()
                                              : Alphabet::Ascii());
    uint32_t len = 200 + static_cast<uint32_t>(rng.Below(2000));
    std::string s;
    for (uint32_t i = 0; i < len; ++i) {
      // Draw until the character is in the alphabet, then canonicalize
      // (DNA/protein alphabets fold case, the byte-exact oracle does
      // not).
      while (true) {
        char c = letters[rng.Below(letters.size())];
        Code code = alphabet.Encode(c);
        if (code != kInvalidCode) {
          s.push_back(alphabet.Decode(code));
          break;
        }
      }
    }
    SpineIndex reference(alphabet);
    CompactSpineIndex compact(alphabet);
    ASSERT_TRUE(reference.AppendString(s).ok());
    ASSERT_TRUE(compact.AppendString(s).ok());
    storage::DiskSpine::Options options;
    options.pool_frames = 8;
    auto disk = storage::DiskSpine::Create(
        alphabet, ::testing::TempDir() + "/sweep.idx", options);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AppendString(s).ok());

    for (int trial = 0; trial < 30; ++trial) {
      uint32_t start = static_cast<uint32_t>(rng.Below(len - 10));
      std::string pattern = s.substr(start, 1 + rng.Below(9));
      auto want = naive::FindAllOccurrences(s, pattern);
      ASSERT_EQ(GenericFindAll(reference, pattern), want);
      ASSERT_EQ(GenericFindAll(compact, pattern), want);
      ASSERT_EQ(GenericFindAll(**disk, pattern), want);
    }
    // Matching statistics agree across implementations.
    std::string query = s.substr(len / 3, std::min<size_t>(300, len / 2));
    auto ref_matches = GenericFindMaximalMatches(reference, query, 3);
    auto compact_matches = GenericFindMaximalMatches(compact, query, 3);
    auto disk_matches = GenericFindMaximalMatches(**disk, query, 3);
    ASSERT_EQ(ref_matches.size(), compact_matches.size());
    ASSERT_EQ(ref_matches.size(), disk_matches.size());
    for (size_t k = 0; k < ref_matches.size(); ++k) {
      ASSERT_EQ(ref_matches[k], compact_matches[k]);
      ASSERT_EQ(ref_matches[k], disk_matches[k]);
    }
  }
}

// Serializer robustness: random single-byte corruptions of a valid
// image must never crash the loader — they either fail cleanly or load
// a structurally valid index.
TEST(RegressionTest, SerializerBitFlipFuzz) {
  Rng rng(31415);
  const char* letters = "ACGT";
  std::string s;
  for (int i = 0; i < 3000; ++i) s.push_back(letters[rng.Below(4)]);
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(s).ok());
  const std::string path = ::testing::TempDir() + "/flip.idx";
  ASSERT_TRUE(SaveCompactSpine(index, path).ok());

  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    image = buf.str();
  }
  int loaded_ok = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = image;
    size_t pos = rng.Below(corrupted.size());
    corrupted[pos] = static_cast<char>(corrupted[pos] ^
                                       (1 << rng.Below(8)));
    const std::string bad_path = ::testing::TempDir() + "/flip_bad.idx";
    {
      std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
      out << corrupted;
    }
    Result<CompactSpineIndex> loaded = LoadCompactSpine(bad_path);
    if (loaded.ok()) {
      ++loaded_ok;  // flip hit a non-structural byte (e.g. a CL bit)
      EXPECT_TRUE(loaded->Validate().ok());
    }
  }
  // Most flips land in table payloads and may load; the point of the
  // test is the absence of crashes and of invalid loaded structures.
  SUCCEED() << loaded_ok << " of 60 corrupted images still loaded";
}

// The paper's Table 6 claim as an invariant: on realistic matching
// workloads SPINE's set-based link shrinking checks fewer nodes than
// the suffix tree's one-suffix-per-hop walk.
TEST(RegressionTest, SpineChecksFewerNodesThanSuffixTree) {
  seq::GeneratorOptions gen;
  gen.length = 60000;
  for (uint64_t seed : {1u, 2u, 3u}) {
    gen.seed = seed;
    std::string data = seq::GenerateSequence(Alphabet::Dna(), gen);
    gen.seed = seed + 100;
    std::string query = seq::GenerateSequence(Alphabet::Dna(), gen);

    CompactSpineIndex index(Alphabet::Dna());
    ASSERT_TRUE(index.AppendString(data).ok());
    SuffixTree tree(Alphabet::Dna());
    ASSERT_TRUE(tree.AppendString(data).ok());

    SearchStats spine_stats, st_stats;
    GenericFindMaximalMatches(index, query, 20, &spine_stats);
    GenericStFindMaximalMatches(tree, query, 20, &st_stats);
    uint64_t spine_checked = spine_stats.nodes_checked +
                             spine_stats.link_traversals +
                             spine_stats.chain_hops;
    uint64_t st_checked = st_stats.nodes_checked + st_stats.link_traversals +
                          st_stats.chain_hops;
    EXPECT_LT(spine_checked, st_checked) << "seed " << seed;
  }
}

// The byte alphabet exceeds the compact layout's 7-bit character
// labels, but the reference implementation covers it fully.
TEST(RegressionTest, ByteAlphabetOnReferenceImplementation) {
  Rng rng(777);
  std::string s;
  for (int i = 0; i < 1500; ++i) {
    s.push_back(static_cast<char>(rng.Below(255)));  // 0xFF is reserved
  }
  SpineIndex index(Alphabet::Byte());
  ASSERT_TRUE(index.AppendString(s).ok());
  ASSERT_TRUE(index.Validate().ok());
  for (int trial = 0; trial < 60; ++trial) {
    uint32_t start = static_cast<uint32_t>(rng.Below(s.size() - 8));
    std::string pattern = s.substr(start, 1 + rng.Below(7));
    ASSERT_EQ(index.FindAll(pattern), naive::FindAllOccurrences(s, pattern));
  }
}

}  // namespace
}  // namespace spine
