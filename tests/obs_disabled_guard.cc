// Compiled with SPINE_OBS_DISABLED defined for this translation unit
// only (see tests/CMakeLists.txt), while the rest of obs_test is built
// with instrumentation enabled. Proves the compile-out contract: every
// SPINE_OBS_* macro expands to nothing, so firing them registers no
// metrics and performs no work. Macro expansion is per-TU, so this
// coexists with enabled TUs in one binary without ODR issues (the
// registry types themselves are identical in both flavors).

#undef SPINE_OBS_DISABLED
#define SPINE_OBS_DISABLED 1

#include "obs_disabled_guard.h"

#include "obs/metrics.h"

namespace spine::obs_test {

size_t FireDisabledMacros(obs::Registry& registry) {
  const size_t before = registry.metric_count();
  // These names must not collide with any metric the enabled TUs use;
  // if the macros were live they would register into the default
  // registry and the caller's count check would catch it.
  SPINE_OBS_COUNT("disabled_guard.counter", 1);
  SPINE_OBS_GAUGE_SET("disabled_guard.gauge", 42);
  SPINE_OBS_OBSERVE_US("disabled_guard.histogram", 3.5);
  { SPINE_OBS_SCOPED_TIMER_US("disabled_guard.timer"); }
  // The registry passed in must also be untouched.
  return registry.metric_count() - before;
}

}  // namespace spine::obs_test
