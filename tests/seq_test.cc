// Tests for the sequence substrate: FASTA I/O, the synthetic generator
// and the dataset presets.

#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "seq/datasets.h"
#include "seq/fasta.h"
#include "seq/generator.h"

namespace spine::seq {
namespace {

TEST(FastaTest, ParsesMultiRecordInput) {
  const std::string text =
      ">chr1 first test record\n"
      "ACGTACGT\n"
      "ACGT\n"
      ";an old-style comment\n"
      ">chr2\n"
      "TTTT\r\n"
      "GG GG\n";
  Result<std::vector<FastaRecord>> records = ParseFasta(text);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].id, "chr1");
  EXPECT_EQ((*records)[0].comment, "first test record");
  EXPECT_EQ((*records)[0].sequence, "ACGTACGTACGT");
  EXPECT_EQ((*records)[1].id, "chr2");
  EXPECT_EQ((*records)[1].comment, "");
  EXPECT_EQ((*records)[1].sequence, "TTTTGGGG");
}

TEST(FastaTest, RejectsSequenceBeforeHeader) {
  Result<std::vector<FastaRecord>> records = ParseFasta("ACGT\n>x\nA\n");
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kCorruption);
}

TEST(FastaTest, EmptyInputYieldsNoRecords) {
  Result<std::vector<FastaRecord>> records = ParseFasta("");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(FastaTest, WriteReadRoundTrip) {
  std::vector<FastaRecord> records = {
      {"id1", "a comment", std::string(200, 'A')},
      {"id2", "", "ACGTACGT"},
  };
  const std::string path = ::testing::TempDir() + "/fasta_rt.fa";
  ASSERT_TRUE(WriteFasta(path, records, 60).ok());
  Result<std::vector<FastaRecord>> loaded = ReadFasta(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].id, records[0].id);
  EXPECT_EQ((*loaded)[0].comment, records[0].comment);
  EXPECT_EQ((*loaded)[0].sequence, records[0].sequence);
  EXPECT_EQ((*loaded)[1].sequence, records[1].sequence);
}

TEST(FastaTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadFasta("/nonexistent/nope.fa").ok());
  EXPECT_FALSE(WriteFasta("/nonexistent/dir/nope.fa", {}).ok());
  EXPECT_FALSE(WriteFasta(::testing::TempDir() + "/w.fa", {}, 0).ok());
}

TEST(FastaTest, HandlesCrOnlyLineEndings) {
  // Classic-Mac exports separate lines with bare '\r'; getline-style
  // parsing would glue the whole file into one header line.
  Result<std::vector<FastaRecord>> records =
      ParseFasta(">chr1 old mac\rACGT\rACGT\r>chr2\rTT\r");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].id, "chr1");
  EXPECT_EQ((*records)[0].sequence, "ACGTACGT");
  EXPECT_EQ((*records)[1].id, "chr2");
  EXPECT_EQ((*records)[1].sequence, "TT");
}

TEST(FastaTest, HeaderOnlyRecordParsesEmpty) {
  Result<std::vector<FastaRecord>> records =
      ParseFasta(">empty nothing follows\n>real\nACGT\n");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].id, "empty");
  EXPECT_TRUE((*records)[0].sequence.empty());
  EXPECT_EQ((*records)[1].sequence, "ACGT");
}

TEST(FastaTest, RejectsEmptyHeaderId) {
  Result<std::vector<FastaRecord>> records = ParseFasta(">\nACGT\n");
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kCorruption);
  // An id made of only whitespace is also empty.
  records = ParseFasta(">   trailing comment\nACGT\n");
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kCorruption);
}

TEST(FastaTest, RejectsNonPrintableSequenceBytes) {
  // A NUL byte in the residues means a truncated or binary file.
  std::string text = ">id\nAC";
  text.push_back('\0');
  text += "GT\n";
  Result<std::vector<FastaRecord>> records = ParseFasta(text);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kCorruption);
  EXPECT_NE(records.status().message().find("0x00"), std::string::npos)
      << records.status().ToString();

  // Control bytes (e.g. a stray 0x01) are rejected too; tabs and
  // spaces inside sequence lines remain fine.
  records = ParseFasta(">id\nAC\x01GT\n");
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kCorruption);
  records = ParseFasta(">id\nAC GT\tAC\n");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].sequence, "ACGTAC");
}

TEST(GeneratorTest, ProducesRequestedLengthAndAlphabet) {
  GeneratorOptions options;
  options.length = 50000;
  options.seed = 1;
  std::string s = GenerateSequence(Alphabet::Dna(), options);
  EXPECT_EQ(s.size(), options.length);
  for (char c : s) {
    ASSERT_NE(Alphabet::Dna().Encode(c), kInvalidCode) << c;
  }
  // All four characters appear.
  std::set<char> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 4u);
}

TEST(GeneratorTest, DeterministicPerSeed) {
  GeneratorOptions options;
  options.length = 20000;
  options.seed = 7;
  std::string a = GenerateSequence(Alphabet::Dna(), options);
  std::string b = GenerateSequence(Alphabet::Dna(), options);
  EXPECT_EQ(a, b);
  options.seed = 8;
  EXPECT_NE(a, GenerateSequence(Alphabet::Dna(), options));
}

TEST(GeneratorTest, RepeatFractionIncreasesRepetitiveness) {
  // Measure repetitiveness as the number of distinct 12-mers: more
  // repeats -> fewer distinct k-mers.
  auto distinct_kmers = [](const std::string& s) {
    std::set<std::string> kmers;
    for (size_t i = 0; i + 12 <= s.size(); ++i) kmers.insert(s.substr(i, 12));
    return kmers.size();
  };
  GeneratorOptions sparse;
  sparse.length = 60000;
  sparse.seed = 5;
  sparse.repeat_fraction = 0.0;
  GeneratorOptions dense = sparse;
  dense.repeat_fraction = 1.0;
  EXPECT_GT(distinct_kmers(GenerateSequence(Alphabet::Dna(), sparse)),
            distinct_kmers(GenerateSequence(Alphabet::Dna(), dense)));
}

TEST(GeneratorTest, MutateCopySharesLongSubstrings) {
  GeneratorOptions options;
  options.length = 30000;
  options.seed = 3;
  std::string source = GenerateSequence(Alphabet::Dna(), options);
  MutateOptions mutate;
  mutate.seed = 4;
  std::string copy = MutateCopy(Alphabet::Dna(), source, mutate);
  EXPECT_NE(copy, source);
  EXPECT_GT(copy.size(), source.size() / 2);
  // The copy shares at least one long exact block with the source.
  bool shares = false;
  for (size_t i = 0; i + 40 <= copy.size() && !shares; i += 200) {
    shares = source.find(copy.substr(i, 40)) != std::string::npos;
  }
  EXPECT_TRUE(shares);
}

TEST(DatasetsTest, PresetsMatchThePaper) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(DatasetByName("ECO").paper_length, 3'500'000u);
  EXPECT_EQ(DatasetByName("CEL").paper_length, 15'500'000u);
  EXPECT_EQ(DatasetByName("HC21").paper_length, 28'500'000u);
  EXPECT_EQ(DatasetByName("HC19").paper_length, 57'500'000u);
  EXPECT_TRUE(DatasetByName("YST-R").is_protein);
  EXPECT_FALSE(DatasetByName("ECO").is_protein);
}

TEST(DatasetsTest, ScalingAndAlphabets) {
  const DatasetSpec& eco = DatasetByName("ECO");
  std::string tiny = MakeDataset(eco, 0.001);
  EXPECT_EQ(tiny.size(), 3500u);
  EXPECT_EQ(DatasetAlphabet(eco).kind(), Alphabet::Kind::kDna);
  EXPECT_EQ(DatasetAlphabet(DatasetByName("DRO-R")).kind(),
            Alphabet::Kind::kProtein);
  // Protein presets produce valid residues.
  std::string protein = MakeDataset(DatasetByName("ECO-R"), 0.001);
  for (char c : protein) {
    ASSERT_NE(Alphabet::Protein().Encode(c), kInvalidCode);
  }
}

TEST(DatasetsTest, BenchScaleFromEnv) {
  ::unsetenv("SPINE_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.25), 0.25);
  ::setenv("SPINE_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.25), 0.5);
  ::setenv("SPINE_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.25), 0.25);
  ::unsetenv("SPINE_BENCH_SCALE");
}

}  // namespace
}  // namespace spine::seq
