// Cross-structure agreement on the protein alphabet and other
// configurations that earlier suites cover only for DNA: every index
// family must report identical occurrence sets on identical inputs.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "align/approximate.h"
#include "align/chainer.h"
#include "compact/compact_spine.h"
#include "core/spine_index.h"
#include "dawg/compact_dawg.h"
#include "dawg/suffix_automaton.h"
#include "mrs/frequency_filter.h"
#include "naive/naive_index.h"
#include "seq/generator.h"
#include "suffix_array/suffix_array.h"
#include "suffix_tree/packed_suffix_tree.h"
#include "suffix_tree/suffix_tree.h"

namespace spine {
namespace {

struct CrossCase {
  bool protein;
  uint32_t length;
  uint64_t seed;
};

class CrossStructureTest : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossStructureTest, AllStructuresAgreeOnOccurrences) {
  const CrossCase param = GetParam();
  Alphabet alphabet =
      param.protein ? Alphabet::Protein() : Alphabet::Dna();
  Rng rng(param.seed);
  const std::string letters =
      param.protein ? "ACDEFGHIKLMNPQRSTVWY" : "ACGT";
  uint32_t sigma = param.protein ? 6 : 3;  // subset: denser repeats
  std::string s;
  for (uint32_t i = 0; i < param.length; ++i) {
    s.push_back(letters[rng.Below(sigma)]);
  }

  SpineIndex reference(alphabet);
  CompactSpineIndex compact(alphabet);
  SuffixTree tree(alphabet);
  PackedSuffixTree packed(alphabet);
  SuffixAutomaton dawg(alphabet);
  ASSERT_TRUE(reference.AppendString(s).ok());
  ASSERT_TRUE(compact.AppendString(s).ok());
  ASSERT_TRUE(tree.AppendString(s).ok());
  ASSERT_TRUE(packed.AppendString(s).ok());
  ASSERT_TRUE(dawg.AppendString(s).ok());
  Result<SuffixArray> sa = SuffixArray::Build(alphabet, s);
  ASSERT_TRUE(sa.ok());
  Result<CompactDawg> cdawg = CompactDawg::Build(alphabet, s);
  ASSERT_TRUE(cdawg.ok());

  for (int trial = 0; trial < 120; ++trial) {
    std::string pattern;
    if (trial % 2 == 0) {
      uint32_t start = static_cast<uint32_t>(rng.Below(param.length));
      pattern = s.substr(start, 1 + rng.Below(12));
    } else {
      for (uint32_t i = 0; i < 1 + rng.Below(8); ++i) {
        pattern.push_back(letters[rng.Below(sigma)]);
      }
    }
    auto expected = naive::FindAllOccurrences(s, pattern);
    ASSERT_EQ(reference.FindAll(pattern), expected) << pattern;
    ASSERT_EQ(compact.FindAll(pattern), expected) << pattern;
    ASSERT_EQ(tree.FindAll(pattern), expected) << pattern;
    ASSERT_EQ(packed.FindAll(pattern), expected) << pattern;
    ASSERT_EQ(dawg.FindAll(pattern), expected) << pattern;
    ASSERT_EQ(sa->FindAll(pattern), expected) << pattern;
    ASSERT_EQ(cdawg->Contains(pattern), !expected.empty()) << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, CrossStructureTest,
    ::testing::Values(CrossCase{false, 120, 1}, CrossCase{false, 500, 2},
                      CrossCase{false, 1500, 3}, CrossCase{true, 200, 4},
                      CrossCase{true, 800, 5}),
    [](const ::testing::TestParamInfo<CrossCase>& info) {
      return std::string(info.param.protein ? "protein" : "dna") + "_len" +
             std::to_string(info.param.length);
    });

TEST(CrossStructureTest, MrsAgreesOnProtein) {
  Rng rng(9);
  const std::string letters = "ACDEFGHIKLMNPQRSTVWY";
  std::string s;
  for (int i = 0; i < 400; ++i) s.push_back(letters[rng.Below(8)]);
  // Protein sigma^2 = 400 dims still fits the filter's clamp.
  auto filter = mrs::FrequencyFilterIndex::Build(Alphabet::Protein(), s);
  ASSERT_TRUE(filter.ok());
  CompactSpineIndex spine(Alphabet::Protein());
  ASSERT_TRUE(spine.AppendString(s).ok());
  for (int trial = 0; trial < 10; ++trial) {
    std::string pattern = s.substr(rng.Below(s.size() - 12), 8 + rng.Below(4));
    auto filter_hits = filter->FindApproximate(pattern, 1);
    auto spine_hits = align::FindApproximate(spine, pattern, 1);
    ASSERT_EQ(filter_hits.size(), spine_hits.size()) << pattern;
  }
}

TEST(CrossStructureTest, ChainerScalesToManyAnchors) {
  // 20k random anchors: the O(k log k) DP must both terminate quickly
  // and produce a valid chain.
  Rng rng(31);
  std::vector<align::Anchor> anchors;
  for (int i = 0; i < 20000; ++i) {
    anchors.push_back({static_cast<uint32_t>(rng.Below(1'000'000)),
                       static_cast<uint32_t>(rng.Below(1'000'000)),
                       10 + static_cast<uint32_t>(rng.Below(90))});
  }
  align::Chain chain = align::BestChain(anchors, 16);
  EXPECT_GT(chain.anchors.size(), 100u);
  uint64_t total = 0;
  for (size_t i = 0; i < chain.anchors.size(); ++i) {
    total += chain.anchors[i].length;
    if (i > 0) {
      ASSERT_LE(chain.anchors[i - 1].query_pos + chain.anchors[i - 1].length,
                chain.anchors[i].query_pos);
      ASSERT_LE(chain.anchors[i - 1].data_pos + chain.anchors[i - 1].length,
                chain.anchors[i].data_pos);
    }
  }
  EXPECT_EQ(total, chain.score);
  EXPECT_GE(chain.raw_score, chain.score);
}

}  // namespace
}  // namespace spine
