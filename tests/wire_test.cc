// Round-trip and robustness tests for the unified wire envelope
// (core/wire.h): every query kind and every error status survives the
// binary and JSON encodings unchanged, and junk / truncated / oversized
// byte streams always come back as kProtocolError — never a crash,
// never a silently misread payload.

#include "core/wire.h"

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "core/query.h"

namespace spine::core::wire {
namespace {

// One request per query kind, with non-default knobs so defaulted
// fields cannot masquerade as correctly decoded ones.
std::vector<QueryRequest> AllKindsRequests() {
  std::vector<QueryRequest> requests = {
      {1, Query::FindAll("ACGTACGT")},
      {2, Query::Contains("TTTT")},
      {7, Query::MaximalMatches("ACGTACGTACGT", 5, true)},
      {99, Query::MatchingStats("GATTACA")},
      {12, Query::Mismatch("GATTACA", 2)},
      {13, Query::EditDistance("ACGTTGCA", 3)},
  };
  // Mixed deadlines — absent (0), small, and the full-range maximum —
  // so every round-trip test below also proves deadline_ms survives;
  // one approximate request carries a deadline too, so both trailing
  // words coexist on the wire.
  requests[1].query.deadline_ms = 250;
  requests[2].query.deadline_ms = std::numeric_limits<uint32_t>::max();
  requests[4].query.deadline_ms = 9000;
  return requests;
}

QueryResult RichResult() {
  QueryResult result;
  result.found = true;
  result.hits = {{0, 8, 0}, {16, 8, 4}, {4096, 3, 9}};
  result.matching_stats = {1, 2, 3, 4, 0, 7};
  result.stats.nodes_checked = 123;
  result.stats.link_traversals = 45;
  result.stats.chain_hops = 6;
  return result;
}

TEST(WireBinaryTest, RequestRoundTripsForEveryQueryKind) {
  for (const QueryRequest& request : AllKindsRequests()) {
    std::string buffer;
    AppendRequestFrame(request, &buffer);

    Frame frame;
    size_t consumed = 0;
    ASSERT_TRUE(ExtractFrame(buffer, &frame, &consumed).ok());
    ASSERT_EQ(consumed, buffer.size());
    EXPECT_EQ(frame.version, kWireVersion);
    ASSERT_EQ(frame.type, FrameType::kQuery);

    Result<QueryRequest> decoded = DecodeRequest(frame.payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, request);
  }
}

TEST(WireBinaryTest, ResponseRoundTripsPayloadAndWorkCounters) {
  QueryResponse response;
  response.id = 0xdeadbeefcafe;
  response.result = RichResult();

  std::string buffer;
  AppendResponseFrame(response, &buffer);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(buffer, &frame, &consumed).ok());
  ASSERT_EQ(frame.type, FrameType::kResponse);

  Result<QueryResponse> decoded = DecodeResponse(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, response.id);
  EXPECT_TRUE(decoded->result.SameAnswer(response.result));
  EXPECT_EQ(decoded->result.stats.nodes_checked, 123u);
  EXPECT_EQ(decoded->result.stats.link_traversals, 45u);
  EXPECT_EQ(decoded->result.stats.chain_hops, 6u);
}

TEST(WireBinaryTest, EveryStatusCodeSurvivesTheResponseEncoding) {
  for (uint8_t c = 0; c <= static_cast<uint8_t>(StatusCode::kProtocolError);
       ++c) {
    QueryResponse response;
    response.id = c;
    response.result.status_code = static_cast<StatusCode>(c);
    if (c != 0) response.result.error = "synthetic failure";

    std::string buffer;
    AppendResponseFrame(response, &buffer);
    Frame frame;
    size_t consumed = 0;
    ASSERT_TRUE(ExtractFrame(buffer, &frame, &consumed).ok());
    Result<QueryResponse> decoded = DecodeResponse(frame.payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->result.status_code, static_cast<StatusCode>(c));
    EXPECT_EQ(decoded->result.error, response.result.error);
  }
}

TEST(WireBinaryTest, OversizedResponseDegradesToResourceExhausted) {
  // ~1.5M hits encode to ~18 MiB — past the frame cap. The encoder
  // must emit a small kResourceExhausted response with the same id,
  // never a frame ExtractFrame would reject as a protocol error.
  QueryResponse response;
  response.id = 77;
  response.result.found = true;
  response.result.stats.nodes_checked = 5;
  response.result.hits.resize(1500000, Hit{1, 2, 3});

  std::string buffer;
  AppendResponseFrame(response, &buffer);
  EXPECT_LT(buffer.size(), 1024u);

  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(buffer, &frame, &consumed).ok());
  ASSERT_EQ(consumed, buffer.size());
  ASSERT_EQ(frame.type, FrameType::kResponse);
  Result<QueryResponse> decoded = DecodeResponse(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, 77u);
  EXPECT_EQ(decoded->result.status_code, StatusCode::kResourceExhausted);
  EXPECT_TRUE(decoded->result.hits.empty());
  EXPECT_TRUE(decoded->result.found);
  EXPECT_EQ(decoded->result.stats.nodes_checked, 5u);
  EXPECT_NE(decoded->result.error.find("1500000"), std::string::npos);
}

TEST(WireBinaryTest, ErrorFrameRoundTrips) {
  WireError error{42, StatusCode::kOverloaded, "try later"};
  std::string buffer;
  AppendErrorFrame(error, &buffer);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(buffer, &frame, &consumed).ok());
  ASSERT_EQ(frame.type, FrameType::kError);
  Result<WireError> decoded = DecodeError(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, 42u);
  EXPECT_EQ(decoded->code, StatusCode::kOverloaded);
  EXPECT_EQ(decoded->message, "try later");
}

TEST(WireBinaryTest, StatsFramesRoundTrip) {
  std::string buffer;
  AppendStatsRequestFrame(&buffer);
  AppendStatsResponseFrame("{\"queries\":7}", &buffer);

  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(buffer, &frame, &consumed).ok());
  EXPECT_EQ(frame.type, FrameType::kStats);
  EXPECT_TRUE(frame.payload.empty());
  buffer.erase(0, consumed);

  ASSERT_TRUE(ExtractFrame(buffer, &frame, &consumed).ok());
  ASSERT_EQ(frame.type, FrameType::kStatsResponse);
  Result<std::string> stats = DecodeStatsResponse(frame.payload);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(*stats, "{\"queries\":7}");
}

TEST(WireBinaryTest, PartialPrefixesAskForMoreBytesAtEveryLength) {
  std::string buffer;
  AppendRequestFrame({5, Query::FindAll("ACGT")}, &buffer);
  // Every strict prefix is "partial": OK with consumed == 0.
  for (size_t len = 0; len < buffer.size(); ++len) {
    Frame frame;
    size_t consumed = 1;  // must be reset by ExtractFrame
    Status status =
        ExtractFrame(std::string_view(buffer).substr(0, len), &frame,
                     &consumed);
    EXPECT_TRUE(status.ok()) << "prefix len " << len;
    EXPECT_EQ(consumed, 0u) << "prefix len " << len;
  }
}

TEST(WireBinaryTest, OversizedLengthIsAProtocolErrorBeforeAnyAllocation) {
  std::string buffer;
  const uint32_t huge = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    buffer.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  Frame frame;
  size_t consumed = 0;
  Status status = ExtractFrame(buffer, &frame, &consumed);
  EXPECT_EQ(status.code(), StatusCode::kProtocolError);
}

TEST(WireBinaryTest, BadVersionAndBadTypeAreProtocolErrors) {
  std::string good;
  AppendRequestFrame({1, Query::FindAll("ACGT")}, &good);

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(kWireVersion + 1);
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(ExtractFrame(bad_version, &frame, &consumed).code(),
            StatusCode::kProtocolError);

  std::string bad_type = good;
  bad_type[5] = 0;  // below kQuery
  EXPECT_EQ(ExtractFrame(bad_type, &frame, &consumed).code(),
            StatusCode::kProtocolError);
  bad_type[5] = 99;  // above kError
  EXPECT_EQ(ExtractFrame(bad_type, &frame, &consumed).code(),
            StatusCode::kProtocolError);
}

TEST(WireBinaryTest, UndersizedLengthIsAProtocolError) {
  // length = 1 cannot even hold version + type.
  std::string buffer("\x01\x00\x00\x00\x01", 5);
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(ExtractFrame(buffer, &frame, &consumed).code(),
            StatusCode::kProtocolError);
}

TEST(WireBinaryTest, TruncatedPayloadsNeverDecode) {
  std::string request_frame;
  AppendRequestFrame({9, Query::MaximalMatches("ACGTACGT", 3, true)},
                     &request_frame);
  std::string response_frame;
  QueryResponse response;
  response.id = 11;
  response.result = RichResult();
  AppendResponseFrame(response, &response_frame);

  // Strip the 6-byte frame header, then feed every strict payload
  // prefix to the decoder: each must fail cleanly, none may crash.
  // Exceptions by design: the prefix that drops exactly the trailing
  // max_errors word is the pre-approx payload shape (deadline intact,
  // max_errors == 0), and the one that also drops the deadline word is
  // the pre-deadline shape (both 0) — the version-tolerant decoder
  // accepts both.
  const std::string request_payload = request_frame.substr(6);
  for (size_t len = 0; len < request_payload.size(); ++len) {
    Result<QueryRequest> decoded =
        DecodeRequest(std::string_view(request_payload).substr(0, len));
    if (len == request_payload.size() - 4 ||
        len == request_payload.size() - 8) {
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded->query.deadline_ms, 0u);
      EXPECT_EQ(decoded->query.max_errors, 0u);
      continue;
    }
    EXPECT_FALSE(decoded.ok()) << "payload prefix " << len;
    EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
  }
  const std::string response_payload = response_frame.substr(6);
  for (size_t len = 0; len < response_payload.size(); ++len) {
    Result<QueryResponse> decoded =
        DecodeResponse(std::string_view(response_payload).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "payload prefix " << len;
  }
}

TEST(WireBinaryTest, LyingHitCountIsRejectedWithoutAllocating) {
  // A response payload whose hit count claims 2^31 hits but carries no
  // hit bytes: the decoder must reject it up front (the count check
  // happens before reserve()).
  std::string payload;
  auto put_u32 = [&payload](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      payload.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  for (int i = 0; i < 8; ++i) payload.push_back(0);  // id
  payload.push_back(0);                              // status
  payload.push_back(0);                              // found
  put_u32(0);                                        // error length
  put_u32(0x80000000u);                              // hit count (lie)
  Result<QueryResponse> decoded = DecodeResponse(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
}

TEST(WireBinaryTest, RandomJunkNeverCrashesTheDecoders) {
  Rng rng(20260808);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string junk;
    const uint32_t len = rng.Below(64);
    for (uint32_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.Below(256)));
    }
    Frame frame;
    size_t consumed = 0;
    Status status = ExtractFrame(junk, &frame, &consumed);
    if (status.ok() && consumed > 0) {
      // A junk buffer that happens to frame correctly still must not
      // crash any payload decoder.
      (void)DecodeRequest(frame.payload);
      (void)DecodeResponse(frame.payload);
      (void)DecodeError(frame.payload);
    }
  }
}

TEST(WireJsonTest, RequestRoundTripsForEveryQueryKind) {
  for (const QueryRequest& request : AllKindsRequests()) {
    const std::string line = RequestToJson(request);
    Result<QueryRequest> decoded = ParseRequestJson(line);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString() << " in "
                              << line;
    EXPECT_EQ(*decoded, request) << line;
  }
}

TEST(WireJsonTest, ResponseRoundTripsAnswerFields) {
  QueryResponse response;
  response.id = 31337;
  response.result = RichResult();
  response.result.status_code = StatusCode::kOk;

  Result<QueryResponse> decoded = ParseResponseJson(ResponseToJson(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, 31337u);
  EXPECT_TRUE(decoded->result.SameAnswer(response.result));
}

TEST(WireJsonTest, ErrorStatusesRoundTripByName) {
  for (uint8_t c = 1; c <= static_cast<uint8_t>(StatusCode::kProtocolError);
       ++c) {
    QueryResponse response;
    response.result.status_code = static_cast<StatusCode>(c);
    response.result.error = "nope";
    Result<QueryResponse> decoded =
        ParseResponseJson(ResponseToJson(response));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->result.status_code, static_cast<StatusCode>(c));
    EXPECT_EQ(decoded->result.error, "nope");
  }
}

TEST(WireJsonTest, MalformedLinesAreProtocolErrors) {
  const char* kBad[] = {
      "",
      "not json at all",
      "[1,2,3]",
      "{\"type\":\"query\",\"pattern\":\"A\"}",          // missing version
      "{\"v\":2,\"type\":\"query\",\"pattern\":\"A\"}",  // wrong version
      "{\"v\":1,\"type\":\"nope\",\"pattern\":\"A\"}",   // wrong type
      "{\"v\":1,\"type\":\"query\"}",                    // no pattern
      "{\"v\":1,\"type\":\"query\",\"pattern\":7}",      // pattern not string
      "{\"v\":1,\"type\":\"query\",\"pattern\":\"A\",\"kind\":\"zap\"}",
      "{\"v\":1,\"type\":\"response\"}",                 // no status
      "{\"v\":1,\"type\":\"response\",\"status\":\"Bogus\"}",
  };
  for (const char* line : kBad) {
    EXPECT_EQ(ParseRequestJson(line).status().code(),
              StatusCode::kProtocolError)
        << line;
    EXPECT_EQ(ParseResponseJson(line).status().code(),
              StatusCode::kProtocolError)
        << line;
  }
}

TEST(WireTextTest, ParsesEveryKindPrefixAndDefaultsToFindAll) {
  std::optional<Query> q = ParseQueryText("findall ACGT", 10);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kFindAll);
  EXPECT_EQ(q->pattern, "ACGT");

  q = ParseQueryText("contains TTT", 10);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kContains);

  q = ParseQueryText("match ACGTACGT", 3);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kMaximalMatches);
  EXPECT_EQ(q->min_len, 3u);

  q = ParseQueryText("ms GATTACA", 10);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kMatchingStats);

  q = ParseQueryText("  ACGT  ", 10);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kFindAll);
  EXPECT_EQ(q->pattern, "ACGT");

  EXPECT_FALSE(ParseQueryText("", 10).has_value());
  EXPECT_FALSE(ParseQueryText("   \t", 10).has_value());
  EXPECT_FALSE(ParseQueryText("# comment", 10).has_value());
}

TEST(WireTextTest, PrintsEveryKindAndCapsTheListing) {
  std::ostringstream out;
  QueryResult findall;
  findall.hits = {{3, 4, 0}, {9, 4, 0}};
  PrintResultSummary(out, Query::FindAll("ACGT"), findall);
  EXPECT_EQ(out.str(), "2 occurrence(s) 3 9");

  out.str("");
  QueryResult contains;
  contains.found = true;
  PrintResultSummary(out, Query::Contains("ACGT"), contains);
  EXPECT_EQ(out.str(), "yes");

  out.str("");
  QueryResult match;
  match.hits = {{5, 7, 2}};
  PrintResultSummary(out, Query::MaximalMatches("ACGTACGT", 3), match);
  EXPECT_EQ(out.str(), "1 match(es) query[2..9)@5");

  out.str("");
  QueryResult ms;
  ms.matching_stats = {2, 4};
  PrintResultSummary(out, Query::MatchingStats("ACGT"), ms);
  EXPECT_EQ(out.str(), "n=2 max=4 mean=3");

  out.str("");
  QueryResult error;
  error.status_code = StatusCode::kIoError;
  error.error = "disk fell over";
  PrintResultSummary(out, Query::FindAll("ACGT"), error);
  EXPECT_EQ(out.str(), "ERROR: disk fell over");

  out.str("");
  QueryResult many;
  for (uint32_t i = 0; i < 5; ++i) many.hits.push_back({i, 4, 0});
  PrintResultSummary(out, Query::FindAll("ACGT"), many, /*max_listed=*/3);
  EXPECT_EQ(out.str(), "5 occurrence(s) 0 1 2 (+2 more)");
}

// --- deadline_ms on the wire (PR 7) ----------------------------------------

TEST(WireDeadlineTest, BinaryPayloadWithTrailingJunkIsRejected) {
  std::string buffer;
  AppendRequestFrame({5, Query::FindAll("ACGT")}, &buffer);
  const std::string payload = buffer.substr(6);
  // Any tail other than exactly 0, 4 or 8 extra bytes after the pattern
  // is malformed; the payload already carries the full 8-byte tail, so
  // every junk extension here must be kProtocolError.
  for (size_t extra : {1u, 2u, 3u, 5u, 8u}) {
    std::string junk = payload + std::string(extra, '\xff');
    Result<QueryRequest> decoded = DecodeRequest(junk);
    EXPECT_FALSE(decoded.ok()) << extra << " junk bytes";
    EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
  }
}

TEST(WireDeadlineTest, JsonOmitsZeroAndEmitsNonzero) {
  QueryRequest request{1, Query::FindAll("ACGT")};
  EXPECT_EQ(RequestToJson(request).find("deadline_ms"), std::string::npos);
  request.query.deadline_ms = 75;
  const std::string line = RequestToJson(request);
  EXPECT_NE(line.find("\"deadline_ms\":75"), std::string::npos) << line;
  Result<QueryRequest> decoded = ParseRequestJson(line);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->query.deadline_ms, 75u);
}

TEST(WireDeadlineTest, JsonJunkDeadlinesAreRejectedAndOverflowClamps) {
  const auto envelope = [](const char* deadline) {
    return std::string(
               "{\"v\":1,\"type\":\"query\",\"pattern\":\"ACGT\","
               "\"deadline_ms\":") +
           deadline + "}";
  };
  // Non-numbers and negatives are protocol errors.
  for (const char* bad : {"\"5\"", "null", "[1]", "-1", "-4294967295"}) {
    Result<QueryRequest> decoded = ParseRequestJson(envelope(bad));
    EXPECT_FALSE(decoded.ok()) << bad;
    EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError) << bad;
  }
  // Values past uint32 range clamp instead of wrapping.
  Result<QueryRequest> huge =
      ParseRequestJson(envelope("18446744073709551616"));
  ASSERT_TRUE(huge.ok()) << huge.status().ToString();
  EXPECT_EQ(huge->query.deadline_ms, std::numeric_limits<uint32_t>::max());
  // Fractional budgets truncate toward zero.
  Result<QueryRequest> frac = ParseRequestJson(envelope("2.9"));
  ASSERT_TRUE(frac.ok()) << frac.status().ToString();
  EXPECT_EQ(frac->query.deadline_ms, 2u);
}

// --- max_errors on the wire (the approximate-query PR) ----------------------

// The full truncation matrix over the version-tolerant tail: relative
// to the pattern end, exactly 0, 4 and 8 trailing bytes are the three
// accepted payload shapes; every other length is a protocol error.
TEST(WireApproxTest, BinaryTailMatrixAcceptsExactlyThreeShapes) {
  QueryRequest request{21, Query::Mismatch("GATTACA", 3)};
  request.query.deadline_ms = 777;
  std::string buffer;
  AppendRequestFrame(request, &buffer);
  const std::string payload = buffer.substr(6);
  const size_t base = payload.size() - 8;  // the pattern ends here
  for (size_t tail = 0; tail <= 8; ++tail) {
    Result<QueryRequest> decoded =
        DecodeRequest(std::string_view(payload).substr(0, base + tail));
    if (tail == 0) {  // pre-deadline shape: both fields default
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded->query.deadline_ms, 0u);
      EXPECT_EQ(decoded->query.max_errors, 0u);
    } else if (tail == 4) {  // pre-approx shape: deadline survives
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded->query.deadline_ms, 777u);
      EXPECT_EQ(decoded->query.max_errors, 0u);
    } else if (tail == 8) {  // current shape: everything survives
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(*decoded, request);
    } else {
      EXPECT_FALSE(decoded.ok()) << "tail " << tail;
      EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError)
          << "tail " << tail;
    }
  }
  // Junk beyond the full tail is rejected at every length tried —
  // including another 4/8 bytes, which must not read as more fields.
  for (size_t extra : {1u, 2u, 3u, 4u, 5u, 8u}) {
    Result<QueryRequest> decoded =
        DecodeRequest(payload + std::string(extra, '\x7f'));
    EXPECT_FALSE(decoded.ok()) << extra << " junk bytes";
    EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError) << extra;
  }
}

TEST(WireApproxTest, JsonOmitsZeroBudgetAndEmitsNonzero) {
  QueryRequest request{1, Query::Mismatch("ACGT", 0)};
  EXPECT_EQ(RequestToJson(request).find("max_errors"), std::string::npos);
  request.query.max_errors = 2;
  const std::string line = RequestToJson(request);
  EXPECT_NE(line.find("\"max_errors\":2"), std::string::npos) << line;
  Result<QueryRequest> decoded = ParseRequestJson(line);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->query.max_errors, 2u);
  EXPECT_EQ(decoded->query.kind, QueryKind::kMismatch);
}

TEST(WireApproxTest, JsonJunkBudgetsAreRejectedAndOverflowClamps) {
  const auto envelope = [](const char* errors) {
    return std::string(
               "{\"v\":1,\"type\":\"query\",\"kind\":\"edit\","
               "\"pattern\":\"ACGT\",\"max_errors\":") +
           errors + "}";
  };
  // Non-numbers and negatives are protocol errors, same as deadline_ms.
  for (const char* bad : {"\"2\"", "null", "[2]", "-1", "-4294967296"}) {
    Result<QueryRequest> decoded = ParseRequestJson(envelope(bad));
    EXPECT_FALSE(decoded.ok()) << bad;
    EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError) << bad;
  }
  // Budgets past uint32 range clamp instead of wrapping; any budget
  // >= the pattern length is equally degenerate anyway.
  Result<QueryRequest> huge =
      ParseRequestJson(envelope("18446744073709551616"));
  ASSERT_TRUE(huge.ok()) << huge.status().ToString();
  EXPECT_EQ(huge->query.max_errors, std::numeric_limits<uint32_t>::max());
  // Fractional budgets truncate toward zero.
  Result<QueryRequest> frac = ParseRequestJson(envelope("1.9"));
  ASSERT_TRUE(frac.ok()) << frac.status().ToString();
  EXPECT_EQ(frac->query.max_errors, 1u);
}

TEST(WireApproxTest, QueryTextParsesBudgetsAndRejectsMalformedSuffixes) {
  std::optional<Query> q = ParseQueryText("mismatch:2 GATTACA", 10);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kMismatch);
  EXPECT_EQ(q->pattern, "GATTACA");
  EXPECT_EQ(q->max_errors, 2u);

  q = ParseQueryText("edit:1@250 ACGT", 10);  // combined with a deadline
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kEditDistance);
  EXPECT_EQ(q->max_errors, 1u);
  EXPECT_EQ(q->deadline_ms, 250u);

  q = ParseQueryText("mismatch ACGT", 10);  // budget defaults to 0
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kMismatch);
  EXPECT_EQ(q->max_errors, 0u);

  // Overflow saturates at the uint32 max, same as the JSON dialect.
  q = ParseQueryText("edit:18446744073709551616 ACGT", 10);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kEditDistance);
  EXPECT_EQ(q->max_errors, std::numeric_limits<uint32_t>::max());

  // Malformed suffixes — non-digits, negatives, a budget on an exact
  // kind — degrade the whole line to a findall pattern, the same rule
  // as any other unrecognized first word.
  for (const char* line : {"mismatch:-1 ACGT", "edit:2x ACGT",
                           "mismatch: ACGT", "findall:2 ACGT",
                           "edit:1:2 ACGT"}) {
    q = ParseQueryText(line, 10);
    ASSERT_TRUE(q.has_value()) << line;
    EXPECT_EQ(q->kind, QueryKind::kFindAll) << line;
    EXPECT_EQ(q->pattern, line) << line;
    EXPECT_EQ(q->max_errors, 0u) << line;
  }
}

TEST(WireApproxTest, PrintsApproxSummariesAndCapsTheListing) {
  std::ostringstream out;
  QueryResult mismatch;
  mismatch.hits = {{3, 7, 1}, {9, 7, 0}};
  PrintResultSummary(out, Query::Mismatch("GATTACA", 1), mismatch);
  EXPECT_EQ(out.str(), "2 hit(s) within 1 mismatch(es) 3:1 9:0");

  out.str("");
  QueryResult edit;
  edit.hits = {{5, 6, 2}};
  PrintResultSummary(out, Query::EditDistance("ACGTACG", 2), edit);
  EXPECT_EQ(out.str(), "1 hit(s) within 2 edit(s) 5:6:2");

  out.str("");
  QueryResult many;
  for (uint32_t i = 0; i < 5; ++i) many.hits.push_back({i, 4, 1});
  PrintResultSummary(out, Query::Mismatch("ACGT", 1), many,
                     /*max_listed=*/2);
  EXPECT_EQ(out.str(), "5 hit(s) within 1 mismatch(es) 0:1 1:1 (+3 more)");
}

// --- lifecycle mutate envelopes (docs/LIFECYCLE.md) -------------------------

// One request per op, with non-default fields so defaults cannot
// masquerade as decoded values.
std::vector<MutateRequest> AllOpsMutates() {
  MutateRequest insert;
  insert.id = 11;
  insert.op = MutateOp::kInsert;
  insert.document = "ACGTACGTAC";
  MutateRequest del;
  del.id = 12;
  del.op = MutateOp::kDelete;
  del.doc_id = 42;
  MutateRequest compact;
  compact.id = 13;
  compact.op = MutateOp::kCompact;
  MutateRequest reload;
  reload.id = std::numeric_limits<uint64_t>::max();
  reload.op = MutateOp::kReload;
  return {insert, del, compact, reload};
}

TEST(WireMutateTest, BinaryRoundTripsForEveryOp) {
  for (const MutateRequest& request : AllOpsMutates()) {
    std::string buffer;
    AppendMutateFrame(request, &buffer);
    Frame frame;
    size_t consumed = 0;
    ASSERT_TRUE(ExtractFrame(buffer, &frame, &consumed).ok());
    ASSERT_EQ(consumed, buffer.size());
    ASSERT_EQ(frame.type, FrameType::kMutate);
    Result<MutateRequest> decoded = DecodeMutate(frame.payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, request) << MutateOpName(request.op);
  }
}

TEST(WireMutateTest, BinaryResponseRoundTripsStatusAndGeneration) {
  MutateResponse response;
  response.id = 7;
  response.op = MutateOp::kInsert;
  response.doc_id = 3;
  response.status = StatusCode::kOk;
  response.generation = 12345678901234ull;
  for (StatusCode code : {StatusCode::kOk, StatusCode::kInvalidArgument,
                          StatusCode::kNotFound, StatusCode::kIoError}) {
    response.status = code;
    response.error = code == StatusCode::kOk ? "" : "mutation refused";
    std::string buffer;
    AppendMutateResponseFrame(response, &buffer);
    Frame frame;
    size_t consumed = 0;
    ASSERT_TRUE(ExtractFrame(buffer, &frame, &consumed).ok());
    ASSERT_EQ(frame.type, FrameType::kMutateResponse);
    Result<MutateResponse> decoded = DecodeMutateResponse(frame.payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, response);
  }
}

TEST(WireMutateTest, JsonRoundTripsForEveryOpAndResponse) {
  for (MutateRequest request : AllOpsMutates()) {
    // JSON numbers travel as doubles: ids above 2^53 are binary-only
    // (same constraint as query ids in this dialect).
    request.id = std::min<uint64_t>(request.id, 1ull << 53);
    Result<MutateRequest> parsed = ParseMutateJson(MutateToJson(request));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, request) << MutateOpName(request.op);
  }
  MutateResponse response;
  response.id = 9;
  response.op = MutateOp::kDelete;
  response.doc_id = 17;
  response.status = StatusCode::kNotFound;
  response.error = "document 17 is not live";
  response.generation = 88;
  Result<MutateResponse> parsed =
      ParseMutateResponseJson(MutateResponseToJson(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, response);
}

TEST(WireMutateTest, TruncatedAndJunkMutatePayloadsAreProtocolErrors) {
  MutateRequest request;
  request.id = 5;
  request.op = MutateOp::kInsert;
  request.document = "ACGT";
  std::string buffer;
  AppendMutateFrame(request, &buffer);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(buffer, &frame, &consumed).ok());
  const std::string payload(frame.payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    Result<MutateRequest> truncated =
        DecodeMutate(std::string_view(payload).substr(0, len));
    EXPECT_EQ(truncated.status().code(), StatusCode::kProtocolError)
        << "length " << len;
  }
  // Trailing junk after a complete payload is rejected too.
  EXPECT_EQ(DecodeMutate(payload + "x").status().code(),
            StatusCode::kProtocolError);
  // An out-of-range op byte never decodes (offset 8 = after the id).
  std::string bad_op = payload;
  bad_op[8] = '\x7f';
  EXPECT_EQ(DecodeMutate(bad_op).status().code(), StatusCode::kProtocolError);
  // Malformed JSON lines: wrong type, unknown op, missing fields.
  for (const char* line :
       {"{\"v\":1,\"type\":\"query\",\"id\":1,\"op\":\"insert\",\"doc\":\"A\"}",
        "{\"v\":1,\"type\":\"mutate\",\"id\":1,\"op\":\"upsert\",\"doc\":\"A\"}",
        "{\"v\":1,\"type\":\"mutate\",\"id\":1,\"op\":\"insert\"}",
        "{\"v\":1,\"type\":\"mutate\",\"id\":1,\"op\":\"delete\"}",
        "not json at all"}) {
    EXPECT_EQ(ParseMutateJson(line).status().code(),
              StatusCode::kProtocolError)
        << line;
  }
}

TEST(WireTextTest, KindAtMsSuffixSetsThePerLineDeadline) {
  std::optional<Query> q = ParseQueryText("findall@250 ACGT", 10);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kFindAll);
  EXPECT_EQ(q->pattern, "ACGT");
  EXPECT_EQ(q->deadline_ms, 250u);

  q = ParseQueryText("ms@1 GATTACA", 10);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kMatchingStats);
  EXPECT_EQ(q->deadline_ms, 1u);

  // A budget past uint32 range saturates instead of wrapping.
  q = ParseQueryText("contains@99999999999999999999 TTT", 10);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kContains);
  EXPECT_EQ(q->deadline_ms, std::numeric_limits<uint32_t>::max());

  // A malformed suffix is not a kind prefix at all: the whole line
  // falls back to a findall for the raw text (matching the pre-PR 7
  // treatment of unrecognized first words).
  q = ParseQueryText("findall@abc ACGT", 10);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->kind, QueryKind::kFindAll);
  EXPECT_EQ(q->pattern, "findall@abc ACGT");
  EXPECT_EQ(q->deadline_ms, 0u);

  // "@" with an empty number is likewise not a valid suffix.
  q = ParseQueryText("ms@ GATTACA", 10);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->pattern, "ms@ GATTACA");
  EXPECT_EQ(q->deadline_ms, 0u);
}

}  // namespace
}  // namespace spine::core::wire
