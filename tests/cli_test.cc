// Tests for the spine_tool CLI (via the cli library, no subprocesses).

#include "tools/cli.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace spine::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunCli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  int code = Run(args, out, err);
  return {code, out.str(), err.str()};
}

using spine::test::TempPath;
using spine::test::WriteFile;

TEST(CliTest, NoArgsPrintsUsage) {
  CliResult result = RunCli({});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("usage:"), std::string::npos);
}

TEST(CliTest, HelpSucceeds) {
  CliResult result = RunCli({"help"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("build"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  CliResult result = RunCli({"frobnicate"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, BuildQueryStatsRoundTrip) {
  const std::string fasta = TempPath("cli_data.fa");
  const std::string index = TempPath("cli_data.spine");
  WriteFile(fasta, ">seq test\nACGTACGTAC\nGTACGT\n");

  CliResult build = RunCli({"build", fasta, index});
  ASSERT_EQ(build.code, 0) << build.err;
  EXPECT_NE(build.out.find("indexed 16 characters"), std::string::npos);

  CliResult query = RunCli({"query", index, "ACGT"});
  ASSERT_EQ(query.code, 0) << query.err;
  EXPECT_NE(query.out.find("4 occurrence(s) 0 4 8 12"), std::string::npos);

  CliResult none = RunCli({"query", index, "TTTT"});
  ASSERT_EQ(none.code, 0);
  EXPECT_NE(none.out.find("0 occurrence(s)"), std::string::npos);

  CliResult stats = RunCli({"stats", index});
  ASSERT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("characters      : 16"), std::string::npos);
  EXPECT_NE(stats.out.find("alphabet        : dna"), std::string::npos);
}

TEST(CliTest, BuildRejectsBadInputs) {
  // Exit codes follow the documented mapping: 1 I/O, 2 usage,
  // 3 corruption, 4 invalid argument.
  EXPECT_EQ(RunCli({"build", "/nonexistent.fa", TempPath("x.spine")}).code,
            1);
  const std::string fasta = TempPath("cli_bad.fa");
  WriteFile(fasta, ">seq\nACGTX\n");
  EXPECT_EQ(RunCli({"build", fasta, TempPath("x.spine")}).code, 4);
  EXPECT_EQ(RunCli({"build", fasta, TempPath("x.spine"),
                    "--alphabet=klingon"})
                .code,
            4);
  EXPECT_EQ(RunCli({"build", fasta}).code, 2);  // missing positional
  const std::string empty_fa = TempPath("cli_empty.fa");
  WriteFile(empty_fa, "");
  EXPECT_EQ(RunCli({"build", empty_fa, TempPath("x.spine")}).code, 4);
  // A malformed FASTA (header with no id) is corruption: exit 3.
  const std::string bad_header = TempPath("cli_noid.fa");
  WriteFile(bad_header, ">\nACGT\n");
  EXPECT_EQ(RunCli({"build", bad_header, TempPath("x.spine")}).code, 3);
}

TEST(CliTest, ProteinAlphabetBuild) {
  const std::string fasta = TempPath("cli_protein.fa");
  const std::string index = TempPath("cli_protein.spine");
  WriteFile(fasta, ">p\nMKVLAWGH\n");
  CliResult build = RunCli({"build", fasta, index, "--alphabet=protein"});
  ASSERT_EQ(build.code, 0) << build.err;
  CliResult query = RunCli({"query", index, "VLAW"});
  EXPECT_NE(query.out.find("1 occurrence(s) 2"), std::string::npos);
}

TEST(CliTest, SearchFindsMaximalMatches) {
  const std::string data_fa = TempPath("cli_search_data.fa");
  const std::string query_fa = TempPath("cli_search_query.fa");
  const std::string index = TempPath("cli_search.spine");
  WriteFile(data_fa, ">d\nACGTACGGTACTGACGTT\n");
  WriteFile(query_fa, ">q\nGGTACTG\n");
  ASSERT_EQ(RunCli({"build", data_fa, index}).code, 0);
  CliResult search = RunCli({"search", index, query_fa, "--min-len=5"});
  ASSERT_EQ(search.code, 0) << search.err;
  EXPECT_NE(search.out.find("1 maximal match(es)"), std::string::npos);
  EXPECT_NE(search.out.find("len 7"), std::string::npos);
}

TEST(CliTest, AlignReportsIdentity) {
  const std::string ref_fa = TempPath("cli_align_ref.fa");
  const std::string query_fa = TempPath("cli_align_query.fa");
  // Identical sequences -> 100% coverage and identity.
  WriteFile(ref_fa, ">r\nACGTACGGTACTGACGTTACGTACGGTACTGACGTT\n");
  WriteFile(query_fa, ">q\nACGTACGGTACTGACGTTACGTACGGTACTGACGTT\n");
  CliResult align =
      RunCli({"align", ref_fa, query_fa, "--min-anchor=10"});
  ASSERT_EQ(align.code, 0) << align.err;
  EXPECT_NE(align.out.find("coverage  : 100%"), std::string::npos);
  EXPECT_NE(align.out.find("identity  : 100%"), std::string::npos);
  // MUM flag parses.
  EXPECT_EQ(RunCli({"align", ref_fa, query_fa, "--mum"}).code, 0);
}

TEST(CliTest, GenerateWritesFasta) {
  const std::string out_fa = TempPath("cli_gen.fa");
  CliResult gen =
      RunCli({"generate", out_fa, "--length=5000", "--seed=3"});
  ASSERT_EQ(gen.code, 0) << gen.err;
  // Round-trip: build an index from the generated file.
  CliResult build = RunCli({"build", out_fa, TempPath("cli_gen.spine")});
  EXPECT_EQ(build.code, 0) << build.err;
  EXPECT_NE(build.out.find("indexed 5000 characters"), std::string::npos);
  // Byte alphabet is rejected for generation.
  EXPECT_EQ(RunCli({"generate", out_fa, "--alphabet=byte"}).code, 4);
}

TEST(CliTest, ApproxFindsNearMatches) {
  const std::string fasta = TempPath("cli_approx.fa");
  const std::string index = TempPath("cli_approx.spine");
  WriteFile(fasta, ">d\nAAAATCGAAAA\n");
  ASSERT_EQ(RunCli({"build", fasta, index}).code, 0);
  // "TAGA" matches "TCGA" at position 4 with one substitution.
  CliResult approx = RunCli({"approx", index, "TAGA", "--max-edits=1"});
  ASSERT_EQ(approx.code, 0) << approx.err;
  EXPECT_NE(approx.out.find("pos 4"), std::string::npos);
  // Zero-edit search of an absent pattern finds nothing.
  CliResult none = RunCli({"approx", index, "TAGA", "--max-edits=0"});
  EXPECT_NE(none.out.find("0 hit(s)"), std::string::npos);
  // max-edits >= pattern length is rejected.
  EXPECT_EQ(RunCli({"approx", index, "TA", "--max-edits=2"}).code, 4);
  EXPECT_EQ(RunCli({"approx", index}).code, 2);
}

TEST(CliTest, HammingAndLrsCommands) {
  const std::string fasta = TempPath("cli_ham.fa");
  const std::string index = TempPath("cli_ham.spine");
  WriteFile(fasta, ">d\nACGTACGTTTTT\n");
  ASSERT_EQ(RunCli({"build", fasta, index}).code, 0);

  CliResult hamming =
      RunCli({"hamming", index, "ACGA", "--max-mismatches=1"});
  ASSERT_EQ(hamming.code, 0) << hamming.err;
  // "ACGT" at 0 and 4 are within one mismatch of "ACGA".
  EXPECT_NE(hamming.out.find("pos 0 mismatches 1"), std::string::npos);
  EXPECT_NE(hamming.out.find("pos 4 mismatches 1"), std::string::npos);
  EXPECT_EQ(RunCli({"hamming", index}).code, 2);

  CliResult lrs = RunCli({"lrs", index});
  ASSERT_EQ(lrs.code, 0) << lrs.err;
  // Longest repeated substring of ACGTACGTTTTT is "ACGT" (length 4).
  EXPECT_NE(lrs.out.find("length 4"), std::string::npos);
  EXPECT_NE(lrs.out.find("\"ACGT\""), std::string::npos);
  EXPECT_EQ(RunCli({"lrs"}).code, 2);
}

TEST(CliTest, GeneralizedBuildAndQuery) {
  const std::string fasta = TempPath("cli_multi.fa");
  const std::string index = TempPath("cli_multi.spineg");
  WriteFile(fasta, ">chrA first\nACGTACGT\n>chrB second\nTTACGTT\n");
  CliResult build = RunCli({"gbuild", fasta, index});
  ASSERT_EQ(build.code, 0) << build.err;
  EXPECT_NE(build.out.find("indexed 2 records"), std::string::npos);

  CliResult query = RunCli({"gquery", index, "ACGT"});
  ASSERT_EQ(query.code, 0) << query.err;
  EXPECT_NE(query.out.find("3 occurrence(s)"), std::string::npos);
  EXPECT_NE(query.out.find("chrA @ 0"), std::string::npos);
  EXPECT_NE(query.out.find("chrB @ 2"), std::string::npos);

  // A single-record index file is not a generalized index.
  EXPECT_EQ(RunCli({"gquery", "/nonexistent.spineg", "A"}).code, 1);
  EXPECT_EQ(RunCli({"gbuild", fasta}).code, 2);
}

TEST(CliTest, BatchRunsHeterogeneousQueries) {
  const std::string fasta = TempPath("cli_batch.fa");
  const std::string index = TempPath("cli_batch.spine");
  const std::string patterns = TempPath("cli_batch.txt");
  WriteFile(fasta, ">seq\nACGTACGTACGTACGT\n");
  ASSERT_EQ(RunCli({"build", fasta, index}).code, 0);
  WriteFile(patterns,
            "# comment line\n"
            "ACGT\n"
            "contains TTTT\n"
            "findall GTAC\n"
            "match ACGTACGT\n"
            "ms ACGTTT\n"
            "\n");

  CliResult batch =
      RunCli({"batch", index, patterns, "--threads=2", "--min-len=4"});
  ASSERT_EQ(batch.code, 0) << batch.err;
  EXPECT_NE(batch.out.find("[0] findall ACGT: 4 occurrence(s) 0 4 8 12"),
            std::string::npos);
  EXPECT_NE(batch.out.find("[1] contains TTTT: no"), std::string::npos);
  EXPECT_NE(batch.out.find("[2] findall GTAC: 3 occurrence(s) 2 6 10"),
            std::string::npos);
  EXPECT_NE(batch.out.find("[3] match ACGTACGT: 1 match(es) "
                           "query[0..8)@0"),
            std::string::npos);
  EXPECT_NE(batch.out.find("[4] ms ACGTTT: n=6 max=4"), std::string::npos);
  EXPECT_NE(batch.out.find("5 quer(ies) on 2 thread(s)"), std::string::npos);

  // Identical batches at different thread counts produce identical
  // per-query output lines.
  CliResult batch8 = RunCli({"batch", index, patterns, "--threads=8",
                             "--min-len=4", "--cache-mb=1"});
  ASSERT_EQ(batch8.code, 0) << batch8.err;
  for (int i = 0; i < 5; ++i) {
    const std::string tag = "[" + std::to_string(i) + "]";
    size_t a = batch.out.find(tag);
    size_t b = batch8.out.find(tag);
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_EQ(batch.out.substr(a, batch.out.find('\n', a) - a),
              batch8.out.substr(b, batch8.out.find('\n', b) - b));
  }

  // Bad invocations.
  EXPECT_EQ(RunCli({"batch", index}).code, 2);
  EXPECT_EQ(RunCli({"batch", index, "/nonexistent.txt"}).code, 1);
  const std::string empty_patterns = TempPath("cli_batch_empty.txt");
  WriteFile(empty_patterns, "# nothing\n");
  EXPECT_EQ(RunCli({"batch", index, empty_patterns}).code, 4);
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Parses the JSON document embedded in CLI output (the snapshot is the
// first '{' through the end of the stream).
Result<obs::JsonValue> ParseTrailingJson(const std::string& out) {
  const size_t brace = out.find('{');
  if (brace == std::string::npos) {
    return Status::InvalidArgument("no JSON object in output");
  }
  return obs::ParseJson(std::string_view(out).substr(brace));
}

TEST(CliTest, StatsJsonEmitsVersionedSnapshot) {
  const std::string fasta = TempPath("cli_sj.fa");
  const std::string index = TempPath("cli_sj.spine");
  WriteFile(fasta, ">seq\nACGTACGTACGTACGT\n");
  ASSERT_EQ(RunCli({"build", fasta, index}).code, 0);

  CliResult stats = RunCli({"stats", index, "--json"});
  ASSERT_EQ(stats.code, 0) << stats.err;
  Result<obs::JsonValue> doc = obs::ParseJson(
      stats.out.substr(0, stats.out.find_last_not_of('\n') + 1));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << stats.out;
  EXPECT_DOUBLE_EQ(doc->Find("schema_version")->number,
                   static_cast<double>(obs::kStatsSchemaVersion));
  EXPECT_EQ(doc->Find("command")->string_value, "stats");
  // The metrics section always carries the three maps, populated or not.
  const obs::JsonValue* metrics = doc->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->Find("counters")->is_object());
  EXPECT_TRUE(metrics->Find("gauges")->is_object());
  EXPECT_TRUE(metrics->Find("histograms")->is_object());
  const obs::JsonValue* section = doc->Find("index");
  ASSERT_NE(section, nullptr);
  EXPECT_DOUBLE_EQ(section->Find("characters")->number, 16.0);
  EXPECT_EQ(section->Find("alphabet")->string_value, "dna");
  EXPECT_EQ(section->Find("fanout")->array.size(), 6u);
}

TEST(CliTest, StatsJsonFlagWritesFileOnBuildAndStdoutOnQuery) {
  const std::string fasta = TempPath("cli_sjf.fa");
  const std::string index = TempPath("cli_sjf.spine");
  const std::string json_file = TempPath("cli_sjf_build.json");
  WriteFile(fasta, ">seq\nACGTACGTACGTACGT\n");

  CliResult build =
      RunCli({"build", fasta, index, "--stats-json=" + json_file});
  ASSERT_EQ(build.code, 0) << build.err;
  // The human-readable line still prints; the snapshot goes to the file.
  EXPECT_NE(build.out.find("indexed 16 characters"), std::string::npos);
  Result<obs::JsonValue> doc = ParseTrailingJson(Slurp(json_file));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("command")->string_value, "build");
  EXPECT_DOUBLE_EQ(doc->Find("build")->Find("characters")->number, 16.0);
  EXPECT_GE(doc->Find("build")->Find("seconds")->number, 0.0);

  // Bare --stats-json appends the snapshot to stdout after the text.
  CliResult query = RunCli({"query", index, "ACGT", "--stats-json"});
  ASSERT_EQ(query.code, 0) << query.err;
  EXPECT_NE(query.out.find("4 occurrence(s)"), std::string::npos);
  Result<obs::JsonValue> qdoc = ParseTrailingJson(query.out);
  ASSERT_TRUE(qdoc.ok()) << qdoc.status().ToString() << "\n" << query.out;
  EXPECT_EQ(qdoc->Find("command")->string_value, "query");
  EXPECT_DOUBLE_EQ(qdoc->Find("query")->Find("occurrences")->number, 4.0);
#if !defined(SPINE_OBS_DISABLED)
  // The process-wide registry saw the core matcher counters.
  const obs::JsonValue* counters = qdoc->Find("metrics")->Find("counters");
  ASSERT_NE(counters->Find("core.vertebra_steps"), nullptr);
  EXPECT_GT(counters->Find("core.vertebra_steps")->number, 0.0);
#endif

  // An unwritable destination is an I/O error (exit 1), and failing
  // commands keep their exit codes (no snapshot written).
  EXPECT_EQ(RunCli({"query", index, "ACGT",
                    "--stats-json=/nonexistent-dir/x.json"})
                .code,
            1);
  const std::string bad_fa = TempPath("cli_sjf_bad.fa");
  WriteFile(bad_fa, ">seq\nACGTX\n");
  const std::string never = TempPath("cli_sjf_never.json");
  EXPECT_EQ(RunCli({"build", bad_fa, index, "--stats-json=" + never}).code,
            4);
  EXPECT_TRUE(Slurp(never).empty());
}

TEST(CliTest, BatchTraceEmitsPerQueryTraces) {
  const std::string fasta = TempPath("cli_trace.fa");
  const std::string index = TempPath("cli_trace.spine");
  const std::string patterns = TempPath("cli_trace.txt");
  WriteFile(fasta, ">seq\nACGTACGTACGTACGT\n");
  ASSERT_EQ(RunCli({"build", fasta, index}).code, 0);
  WriteFile(patterns, "ACGT\ncontains TTTT\nms ACGTTT\n");

  CliResult batch = RunCli({"batch", index, patterns, "--threads=2",
                            "--trace", "--stats-json"});
  ASSERT_EQ(batch.code, 0) << batch.err;
  Result<obs::JsonValue> doc = ParseTrailingJson(batch.out);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << batch.out;
  const obs::JsonValue* section = doc->Find("batch");
  ASSERT_NE(section, nullptr);
  EXPECT_DOUBLE_EQ(section->Find("queries")->number, 3.0);
#if defined(SPINE_OBS_DISABLED)
  // Capture sites compiled out: tracing yields nothing.
  EXPECT_EQ(section->Find("traces"), nullptr);
#else
  const obs::JsonValue* traces = section->Find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_TRUE(traces->is_array());
  ASSERT_EQ(traces->array.size(), 3u);
  for (const obs::JsonValue& trace : traces->array) {
    // Every query got an exec span, a queue-wait span and work notes.
    EXPECT_GE(trace.Find("spans")->Find("exec_us")->number, 0.0);
    EXPECT_GE(trace.Find("spans")->Find("queue_wait_us")->number, 0.0);
    ASSERT_NE(trace.Find("notes")->Find("cache_hit"), nullptr);
    ASSERT_NE(trace.Find("notes")->Find("nodes_checked"), nullptr);
  }
#endif
  // Without --trace the traces key stays absent.
  CliResult plain =
      RunCli({"batch", index, patterns, "--threads=2", "--stats-json"});
  ASSERT_EQ(plain.code, 0) << plain.err;
  Result<obs::JsonValue> pdoc = ParseTrailingJson(plain.out);
  ASSERT_TRUE(pdoc.ok());
  EXPECT_EQ(pdoc->Find("batch")->Find("traces"), nullptr);
}

TEST(CliTest, QueryOnMissingIndexFails) {
  EXPECT_EQ(RunCli({"query", "/nonexistent.spine", "ACGT"}).code, 1);
  EXPECT_EQ(RunCli({"stats", "/nonexistent.spine"}).code, 1);
}

TEST(CliTest, VerifyAcceptsHealthyImage) {
  const std::string fasta = TempPath("cli_verify.fa");
  const std::string index = TempPath("cli_verify.spine");
  WriteFile(fasta, ">seq\nACGTACGGTACGTTACGATTACGT\n");
  ASSERT_EQ(RunCli({"build", fasta, index}).code, 0);
  CliResult verify = RunCli({"verify", index});
  EXPECT_EQ(verify.code, 0) << verify.err;
  EXPECT_NE(verify.out.find("compact image OK"), std::string::npos);
  // Usage errors.
  EXPECT_EQ(RunCli({"verify"}).code, 2);
  // Missing file is an I/O error, not corruption.
  EXPECT_EQ(RunCli({"verify", "/nonexistent.spine"}).code, 1);
}

TEST(CliTest, VerifyDetectsBitFlippedImageWithExitCode3) {
  const std::string fasta = TempPath("cli_verify_bad.fa");
  const std::string index = TempPath("cli_verify_bad.spine");
  WriteFile(fasta, ">seq\nACGTACGGTACGTTACGATTACGT\n");
  ASSERT_EQ(RunCli({"build", fasta, index}).code, 0);
  // Flip one payload bit somewhere past the header.
  std::string image;
  {
    std::ifstream in(index, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    image = buf.str();
  }
  ASSERT_GT(image.size(), 40u);
  image[image.size() / 2] = static_cast<char>(image[image.size() / 2] ^ 0x02);
  {
    std::ofstream out(index, std::ios::binary | std::ios::trunc);
    out << image;
  }
  CliResult verify = RunCli({"verify", index});
  EXPECT_EQ(verify.code, 3) << verify.out << verify.err;
  EXPECT_NE(verify.err.find("error:"), std::string::npos);

  // A file that is no known artifact at all is also corruption.
  const std::string garbage = TempPath("cli_verify_garbage.bin");
  WriteFile(garbage, "definitely not an index");
  EXPECT_EQ(RunCli({"verify", garbage}).code, 3);
}

// --open=mmap threads through every artifact-opening command (PR 8):
// same answers, same exit codes, and the open mode is reported.
TEST(CliTest, OpenFlagSelectsMmapPathWithIdenticalBehavior) {
  const std::string fasta = TempPath("cli_mmap.fa");
  const std::string index = TempPath("cli_mmap.spine");
  WriteFile(fasta, ">seq\nACGTACGGTACGTTACGATTACGTACGGT\n");
  ASSERT_EQ(RunCli({"build", fasta, index}).code, 0);

  // A healthy artifact verifies under every open path.
  for (const char* spec :
       {"--open=heap", "--open=mmap", "--open=mmap-noverify"}) {
    CliResult verify = RunCli({"verify", index, spec});
    EXPECT_EQ(verify.code, 0) << spec << ": " << verify.err;
  }
  // Query output is byte-identical across open paths.
  CliResult heap_query = RunCli({"query", index, "ACGT"});
  CliResult mmap_query = RunCli({"query", index, "ACGT", "--open=mmap"});
  ASSERT_EQ(heap_query.code, 0);
  ASSERT_EQ(mmap_query.code, 0);
  EXPECT_EQ(heap_query.out, mmap_query.out);
  // The stats snapshot names the open path that produced it.
  CliResult stats = RunCli({"stats", index, "--open=mmap", "--json"});
  ASSERT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("\"open_mode\":\"mmap\""), std::string::npos)
      << stats.out;
  // A bad spec is rejected up front, before touching the artifact.
  EXPECT_EQ(RunCli({"verify", index, "--open=mmap-eager"}).code, 4);
  EXPECT_EQ(RunCli({"query", index, "ACGT", "--open="}).code, 4);
}

TEST(CliTest, VerifyOpenMmapKeepsTheExitCodeContract) {
  const std::string fasta = TempPath("cli_mmap_bad.fa");
  const std::string index = TempPath("cli_mmap_bad.spine");
  WriteFile(fasta, ">seq\nACGTACGGTACGTTACGATTACGT\n");
  ASSERT_EQ(RunCli({"build", fasta, index}).code, 0);
  EXPECT_EQ(RunCli({"verify", index, "--open=mmap"}).code, 0);

  // Missing file stays an I/O error under mmap.
  EXPECT_EQ(RunCli({"verify", "/nonexistent.spine", "--open=mmap"}).code, 1);

  // Bit-flipped payload: the mapped CRC pass catches it, exit 3.
  std::string image;
  {
    std::ifstream in(index, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    image = buf.str();
  }
  ASSERT_GT(image.size(), 40u);
  std::string flipped = image;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x10);
  WriteFile(index, flipped);
  CliResult verify = RunCli({"verify", index, "--open=mmap"});
  EXPECT_EQ(verify.code, 3) << verify.out << verify.err;

  // Truncation is caught on the mmap path too.
  WriteFile(index, image.substr(0, image.size() / 2));
  EXPECT_EQ(RunCli({"verify", index, "--open=mmap"}).code, 3);
}

// The exit-code table (ExitCode in cli.h) is a stable contract: every
// StatusCode maps to exactly the documented number, including the
// serving-layer codes. Scripts match on these, so a renumbering must
// fail loudly here.
TEST(CliTest, ExitCodeTableIsTotalAndStable) {
  EXPECT_EQ(ExitCodeFor(StatusCode::kOk), 0);
  EXPECT_EQ(ExitCodeFor(StatusCode::kIoError), 1);
  // 2 is kExitUsage: malformed command lines only, never a StatusCode.
  EXPECT_EQ(ExitCodeFor(StatusCode::kCorruption), 3);
  EXPECT_EQ(ExitCodeFor(StatusCode::kInvalidArgument), 4);
  EXPECT_EQ(ExitCodeFor(StatusCode::kNotFound), 5);
  EXPECT_EQ(ExitCodeFor(StatusCode::kResourceExhausted), 6);
  EXPECT_EQ(ExitCodeFor(StatusCode::kOutOfRange), 7);
  EXPECT_EQ(ExitCodeFor(StatusCode::kFailedPrecondition), 7);
  EXPECT_EQ(ExitCodeFor(StatusCode::kOverloaded), 8);
  EXPECT_EQ(ExitCodeFor(StatusCode::kProtocolError), 9);
  EXPECT_EQ(ExitCodeFor(StatusCode::kDeadlineExceeded), 10);
  EXPECT_EQ(ExitCodeFor(StatusCode::kCancelled), 11);

  EXPECT_EQ(ExitCodeFor(StatusCode::kOk), kExitOk);
  EXPECT_EQ(ExitCodeFor(StatusCode::kOverloaded), kExitOverloaded);
  EXPECT_EQ(ExitCodeFor(StatusCode::kProtocolError), kExitProtocolError);
  EXPECT_EQ(ExitCodeFor(StatusCode::kDeadlineExceeded), kExitDeadlineExceeded);
  EXPECT_EQ(ExitCodeFor(StatusCode::kCancelled), kExitCancelled);

  // The usage text documents the same table.
  CliResult help = RunCli({"help"});
  EXPECT_NE(help.out.find("8 overloaded"), std::string::npos);
  EXPECT_NE(help.out.find("9 protocol"), std::string::npos);
  EXPECT_NE(help.out.find("10 deadline"), std::string::npos);
  EXPECT_NE(help.out.find("11 cancelled"), std::string::npos);
}

// `query --deadline-ms` enforces the budget on the direct (no-engine)
// path: a generous budget answers normally, exit code 0.
TEST(CliTest, QueryDeadlineFlagIsAcceptedAndGenerousBudgetSucceeds) {
  const std::string fasta = TempPath("cli_dl.fa");
  const std::string index = TempPath("cli_dl.spine");
  WriteFile(fasta, ">seq\nACGTACGGTACGTTACGATTACGT\n");
  ASSERT_EQ(RunCli({"build", fasta, index}).code, 0);
  CliResult result = RunCli({"query", index, "ACGT", "--deadline-ms=60000"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("occurrence"), std::string::npos) << result.out;
}

TEST(CliTest, ServeValidatesItsArguments) {
  CliResult missing = RunCli({"serve"});
  EXPECT_EQ(missing.code, kExitUsage);
  EXPECT_NE(missing.err.find("serve requires"), std::string::npos);

  const std::string fasta = TempPath("cli_serve.fa");
  const std::string index = TempPath("cli_serve.spine");
  WriteFile(fasta, ">s\nACGTACGTACGTACGT\n");
  ASSERT_EQ(RunCli({"build", fasta, index}).code, 0);

  EXPECT_EQ(RunCli({"serve", index, "--port=70000"}).code,
            kExitInvalidArgument);
  EXPECT_EQ(RunCli({"serve", index, "--host=not.an.address"}).code,
            kExitInvalidArgument);
  EXPECT_EQ(RunCli({"serve", index, "--queue-cap=0"}).code,
            kExitInvalidArgument);
  EXPECT_EQ(RunCli({"serve", TempPath("cli_serve_missing.spine")}).code,
            kExitIoError);

  // Usage mentions serve and points at the protocol spec.
  CliResult help = RunCli({"help"});
  EXPECT_NE(help.out.find("serve <artifact>"), std::string::npos);
  EXPECT_NE(help.out.find("SERVING.md"), std::string::npos);
}

}  // namespace
}  // namespace spine::cli
