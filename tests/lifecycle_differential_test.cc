// The lifecycle differential harness (docs/LIFECYCLE.md): every
// interleaving of mutations (insert / delete / flush / compact /
// reload) and queries against shard::DynamicFamily must agree
// byte-for-byte with a naive oracle — a GeneralizedSpineIndex rebuilt
// from scratch over the live canonical documents in doc-id order,
// answering through ExecuteQuery on its underlying index.
//
// Three layers of adversity:
//   1. seeded random interleavings, heap and mmap open paths;
//   2. >= 100 seeded fault schedules on the flush/compaction/delete
//      write path (shard.write / shard.finish / manifest.write /
//      manifest.rename) — a failed mutation must leave the prior
//      generation fully live, in memory AND after a fresh Open;
//   3. compaction racing concurrent readers (the TSan target in CI).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/generalized_spine.h"
#include "core/query.h"
#include "engine/query_engine.h"
#include "shard/dynamic_family.h"
#include "test_util.h"

namespace spine::shard {
namespace {

using spine::test::RandomDna;
using spine::test::ScopedTempDir;

std::vector<Query> AllKinds(const std::string& pattern, uint32_t min_len) {
  return {Query::Contains(pattern), Query::FindAll(pattern),
          Query::MatchingStats(pattern),
          Query::MaximalMatches(pattern, min_len),
          Query::MaximalMatches(pattern, min_len, /*expand=*/true)};
}

// The specification the family is tested against: which documents are
// visible now, which state is durable (visible after Reload / a fresh
// Open), and the manifest-level counters the accessors expose. Every
// transition mirrors the contract in shard/dynamic_family.h, not the
// implementation.
class Model {
 public:
  uint32_t Insert(std::string text) {
    const uint32_t id = next_id_++;
    memtable_.emplace(id, std::move(text));
    ++memtable_ever_;
    return id;
  }

  // True iff the document was live (the family must answer OK).
  bool Delete(uint32_t id) {
    if (memtable_.erase(id) > 0) {
      ++memtable_deleted_;
      return true;
    }
    const auto it = frozen_.find(id);
    if (it == frozen_.end()) return false;
    // Deleting a frozen document commits the manifest at delete time:
    // the tombstone and the current doc-id watermark become durable.
    frozen_.erase(it);
    durable_tombstones_.insert(id);
    durable_next_id_ = next_id_;
    return true;
  }

  void Flush() {
    if (memtable_ever_ == 0) return;  // empty memtable: flush is a no-op
    if (!memtable_.empty()) ++shard_count_;
    for (auto& [id, text] : memtable_) frozen_.emplace(id, std::move(text));
    memtable_.clear();
    memtable_ever_ = 0;
    memtable_deleted_ = 0;  // memtable tombstones resolve at the flush
    durable_next_id_ = next_id_;
  }

  void Compact() {
    Flush();
    if (shard_count_ <= 1 && durable_tombstones_.empty()) return;
    shard_count_ = frozen_.empty() ? 0u : 1u;
    durable_tombstones_.clear();
    durable_next_id_ = next_id_;
  }

  void Reload() {
    // Volatile state dies; every frozen transition was already durable.
    memtable_.clear();
    memtable_ever_ = 0;
    memtable_deleted_ = 0;
    next_id_ = durable_next_id_;
  }

  // Live documents in doc-id order (frozen ids always precede memtable
  // ids: the durable watermark never runs ahead of an unflushed id).
  std::vector<std::string> LiveDocs() const {
    std::vector<std::string> docs;
    docs.reserve(frozen_.size() + memtable_.size());
    for (const auto& [id, text] : frozen_) docs.push_back(text);
    for (const auto& [id, text] : memtable_) docs.push_back(text);
    return docs;
  }
  std::vector<uint32_t> LiveIds() const {
    std::vector<uint32_t> ids;
    for (const auto& [id, text] : frozen_) ids.push_back(id);
    for (const auto& [id, text] : memtable_) ids.push_back(id);
    return ids;
  }

  uint32_t next_id() const { return next_id_; }
  uint32_t live_documents() const {
    return static_cast<uint32_t>(frozen_.size() + memtable_.size());
  }
  uint32_t memtable_documents() const { return memtable_ever_; }
  uint32_t shard_count() const { return shard_count_; }
  uint32_t tombstone_count() const {
    return static_cast<uint32_t>(durable_tombstones_.size()) +
           memtable_deleted_;
  }

 private:
  std::map<uint32_t, std::string> frozen_;    // durable live documents
  std::map<uint32_t, std::string> memtable_;  // volatile live documents
  std::set<uint32_t> durable_tombstones_;
  uint32_t next_id_ = 0;
  uint32_t durable_next_id_ = 0;
  uint32_t memtable_ever_ = 0;      // inserts since the last flush
  uint32_t memtable_deleted_ = 0;   // deletes of those inserts
  uint32_t shard_count_ = 0;
};

// Full agreement check: accessors, then every query kind over a mix of
// guaranteed-hit substrings and random probes against the oracle.
void ExpectAgrees(const DynamicFamily& family, const Model& model, Rng& rng,
                  const std::string& label) {
  ASSERT_EQ(family.live_documents(), model.live_documents()) << label;
  ASSERT_EQ(family.next_doc_id(), model.next_id()) << label;
  ASSERT_EQ(family.frozen_shard_count(), model.shard_count()) << label;
  ASSERT_EQ(family.memtable_documents(), model.memtable_documents()) << label;
  ASSERT_EQ(family.tombstone_count(), model.tombstone_count()) << label;

  const std::vector<std::string> docs = model.LiveDocs();
  GeneralizedSpineIndex oracle(family.alphabet());
  for (const std::string& doc : docs) {
    ASSERT_TRUE(oracle.AddString(doc).ok()) << label;
  }
  ASSERT_EQ(family.size(), oracle.underlying().size()) << label;

  std::vector<std::string> patterns = {"", RandomDna(rng, 3),
                                       RandomDna(rng, 6)};
  for (int i = 0; i < 3 && !docs.empty(); ++i) {
    const std::string& doc = docs[rng.Below(docs.size())];
    const uint64_t start = rng.Below(doc.size());
    patterns.push_back(doc.substr(start, 1 + rng.Below(12)));
  }
  for (const std::string& pattern : patterns) {
    for (const Query& query : AllKinds(pattern, 3)) {
      QueryResult expected = ExecuteQuery(oracle.underlying(), query);
      QueryResult got = family.Execute(query);
      ASSERT_TRUE(got.SameAnswer(expected))
          << label << ", kind " << QueryKindName(query.kind) << ", pattern \""
          << pattern << "\": status " << static_cast<int>(got.status_code)
          << " vs " << static_cast<int>(expected.status_code);
    }
  }
}

TEST(LifecycleDifferentialTest, RandomInterleavingsAgreeWithOracle) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ScopedTempDir dir("lifecycle_seed" + std::to_string(seed));
    Rng rng(seed);
    DynamicFamily::Options options;
    if (seed % 2 == 0) options.open.mode = core::OpenMode::kMmap;
    auto family = DynamicFamily::Create(dir.File("fam.spinefam"),
                                        Alphabet::Dna(), options);
    ASSERT_TRUE(family.ok()) << family.status().ToString();
    Model model;

    for (int op = 0; op < 30; ++op) {
      const uint64_t r = rng.Below(100);
      if (r < 45) {
        const std::string doc = RandomDna(rng, 1 + rng.Below(60));
        auto id = (*family)->InsertDocument(doc);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        ASSERT_EQ(*id, model.Insert(doc));
      } else if (r < 65) {
        // Existing and bogus ids alike; verdicts must match.
        const uint32_t id = static_cast<uint32_t>(
            rng.Below(static_cast<uint64_t>(model.next_id()) + 2));
        const bool lived = model.Delete(id);
        EXPECT_EQ((*family)->DeleteDocument(id).ok(), lived)
            << "op " << op << " delete " << id;
      } else if (r < 80) {
        ASSERT_TRUE((*family)->Flush().ok());
        model.Flush();
      } else if (r < 90) {
        ASSERT_TRUE((*family)->Compact().ok());
        model.Compact();
      } else {
        ASSERT_TRUE((*family)->Reload().ok());
        model.Reload();
      }
      if (op % 5 == 4) {
        ExpectAgrees(**family, model, rng,
                     "seed " + std::to_string(seed) + " op " +
                         std::to_string(op));
      }
    }
    ExpectAgrees(**family, model, rng, "seed " + std::to_string(seed) +
                                           " final");
    EXPECT_TRUE((*family)->VerifyStructure().ok());
  }
}

// Shared switchboard between a test body and the family's write fault
// hook: arm a step, the Nth matching invocation fails once.
struct FaultState {
  std::string armed_step;
  int remaining = 0;
  int fired = 0;
};

TEST(LifecycleDifferentialTest, HundredSeedFaultSchedulesKeepOldGenerationLive) {
  static const char* kSteps[] = {"shard.write", "shard.finish",
                                 "manifest.write", "manifest.rename"};
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ScopedTempDir dir("lifecycle_fault" + std::to_string(seed));
    const std::string path = dir.File("fam.spinefam");
    Rng rng(seed);

    auto fault = std::make_shared<FaultState>();
    DynamicFamily::Options options;
    options.write_fault_hook = [fault](std::string_view step) {
      if (!fault->armed_step.empty() && step == fault->armed_step &&
          --fault->remaining == 0) {
        ++fault->fired;
        return Status::IoError("injected fault at " + std::string(step));
      }
      return Status::OK();
    };
    auto family = DynamicFamily::Create(path, Alphabet::Dna(), options);
    ASSERT_TRUE(family.ok()) << family.status().ToString();
    Model model;

    // Interesting standing state: a few frozen documents across one or
    // two shards, sometimes a durable tombstone, plus a live memtable.
    const int docs = 3 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < docs; ++i) {
      const std::string doc = RandomDna(rng, 8 + rng.Below(32));
      ASSERT_EQ(*(*family)->InsertDocument(doc), model.Insert(doc));
      if (rng.Chance(0.5)) {
        ASSERT_TRUE((*family)->Flush().ok());
        model.Flush();
      }
    }
    if (rng.Chance(0.4) && !model.LiveIds().empty()) {
      const std::vector<uint32_t> ids = model.LiveIds();
      const uint32_t id = ids[rng.Below(ids.size())];
      ASSERT_EQ((*family)->DeleteDocument(id).ok(), model.Delete(id));
    }
    {
      // Guarantee the flush under test has work to do.
      const std::string doc = RandomDna(rng, 8 + rng.Below(24));
      ASSERT_EQ(*(*family)->InsertDocument(doc), model.Insert(doc));
    }

    // Arm one fault and run one mutation against it.
    const int op = static_cast<int>(rng.Below(3));  // 0 flush, 1 compact, 2 delete
    fault->armed_step = kSteps[rng.Below(4)];
    fault->remaining =
        op == 1 ? 1 + static_cast<int>(rng.Below(2)) : 1;  // compact: either leg
    Status status;
    uint32_t delete_target = 0;
    if (op == 2) {
      const std::vector<uint32_t> ids = model.LiveIds();
      delete_target = ids[rng.Below(ids.size())];
      status = (*family)->DeleteDocument(delete_target);
    } else {
      status = op == 0 ? (*family)->Flush() : (*family)->Compact();
    }

    if (status.ok()) {
      // The armed step was not on this mutation's path (e.g. a
      // shard-stage fault under a delete, or the second-leg fault of a
      // compaction that no-oped its merge). Apply the op to the model.
      if (op == 0) {
        model.Flush();
      } else if (op == 1) {
        model.Compact();
      } else {
        ASSERT_TRUE(model.Delete(delete_target));
      }
    } else {
      EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
      // A compaction is flush-then-merge with the manifest committed
      // per leg; if the fault hit the merge leg, the flush leg is
      // already live. The memtable drain tells the legs apart.
      if (op == 1 && (*family)->memtable_documents() == 0 &&
          model.memtable_documents() > 0) {
        model.Flush();
      }
    }

    // Contract under any fault: the current generation answers exactly
    // like the model, the structure verifies, and no temp file leaks.
    ExpectAgrees(**family, model, rng, "post-fault");
    EXPECT_TRUE((*family)->VerifyStructure().ok());
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    // And the on-disk state is the durable subset: a fresh Open agrees
    // with the model after a Reload (which by definition keeps exactly
    // the durable state).
    {
      Model durable = model;
      durable.Reload();
      DynamicFamily::Options plain;
      auto reopened = DynamicFamily::Open(path, plain);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      ExpectAgrees(**reopened, durable, rng, "post-fault reopen");
    }

    // Disarm and retry: the failed mutation must succeed cleanly now.
    fault->armed_step.clear();
    if (!status.ok()) {
      if (op == 2) {
        ASSERT_TRUE((*family)->DeleteDocument(delete_target).ok());
        ASSERT_TRUE(model.Delete(delete_target));
      } else if (op == 0) {
        ASSERT_TRUE((*family)->Flush().ok());
        model.Flush();
      } else {
        ASSERT_TRUE((*family)->Compact().ok());
        model.Compact();
      }
      ExpectAgrees(**family, model, rng, "post-retry");
    }
  }
}

TEST(LifecycleDifferentialTest, CompactionRacesConcurrentReaders) {
  ScopedTempDir dir;
  DynamicFamily::Options options;
  options.flush_threshold_bytes = 256;  // background thread live too
  options.compact_fanout = 3;
  auto family = DynamicFamily::Create(dir.File("fam.spinefam"),
                                      Alphabet::Dna(), options);
  ASSERT_TRUE(family.ok());
  Rng rng(77);
  Model model;
  for (int i = 0; i < 10; ++i) {
    const std::string doc = RandomDna(rng, 40 + rng.Below(40));
    ASSERT_EQ(*(*family)->InsertDocument(doc), model.Insert(doc));
  }
  ASSERT_TRUE((*family)->Flush().ok());
  model.Flush();

  static const char* kPatterns[] = {"ACGT", "GGG", "TTAA", "CACA", "A"};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_failures{0};
  std::atomic<uint64_t> reader_iterations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng thread_rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        ++reader_iterations;
        const Query query =
            Query::FindAll(kPatterns[thread_rng.Below(5)]);
        // A pinned snapshot must be self-consistent: the same query
        // answers identically no matter what writers publish meanwhile.
        std::shared_ptr<const core::Index> snap = (*family)->PinSnapshot();
        if (snap == nullptr) {
          ++reader_failures;
          continue;
        }
        const QueryResult a = snap->Execute(query);
        const QueryResult b = snap->Execute(query);
        if (!a.ok() || !a.SameAnswer(b)) ++reader_failures;
        // And the family's own Execute never fails under racing swaps.
        if (!(*family)->Execute(query).ok()) ++reader_failures;
        // Back off between iterations: glibc's rwlock is
        // reader-preferring, so spinning readers would starve the
        // writer's memtable lock and stretch the test to minutes.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }

  // Writer: the full mutation mix while the readers hammer away. The
  // model only tracks visibility, which background flush/compaction
  // never changes — so it stays exact under the race.
  for (int op = 0; op < 100; ++op) {
    const uint64_t r = rng.Below(100);
    if (r < 60) {
      const std::string doc = RandomDna(rng, 20 + rng.Below(60));
      auto id = (*family)->InsertDocument(doc);
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(*id, model.Insert(doc));
    } else if (r < 80) {
      const std::vector<uint32_t> ids = model.LiveIds();
      if (!ids.empty()) {
        const uint32_t id = ids[rng.Below(ids.size())];
        ASSERT_EQ((*family)->DeleteDocument(id).ok(), model.Delete(id));
      }
    } else if (r < 92) {
      ASSERT_TRUE((*family)->Flush().ok());
      model.Flush();
    } else {
      ASSERT_TRUE((*family)->Compact().ok());
      model.Compact();
    }
    // Pace the writer so mutations genuinely overlap reader activity
    // instead of finishing before the readers get going.
    if (op % 10 == 9) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Make sure the readers actually raced the mutations before calling
  // it a day (bounded: they only need a few ms of runway).
  const auto race_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (reader_iterations.load() < 500 &&
         std::chrono::steady_clock::now() < race_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GE(reader_iterations.load(), 500u);

  EXPECT_EQ(reader_failures.load(), 0u);
  EXPECT_TRUE((*family)->TakeBackgroundError().ok());
  // Background flushes moved documents between shards but never
  // changed visibility or the doc-id watermark; only the shard/
  // memtable counters diverge from the single-threaded model, so
  // compare the visible collection by query, not by accessor.
  GeneralizedSpineIndex oracle(Alphabet::Dna());
  for (const std::string& doc : model.LiveDocs()) {
    ASSERT_TRUE(oracle.AddString(doc).ok());
  }
  EXPECT_EQ((*family)->live_documents(), model.live_documents());
  EXPECT_EQ((*family)->size(), oracle.underlying().size());
  for (const char* pattern : kPatterns) {
    for (const Query& query : AllKinds(pattern, 3)) {
      QueryResult expected = ExecuteQuery(oracle.underlying(), query);
      QueryResult got = (*family)->Execute(query);
      EXPECT_TRUE(got.SameAnswer(expected))
          << QueryKindName(query.kind) << " \"" << pattern << "\"";
    }
  }
  EXPECT_TRUE((*family)->VerifyStructure().ok());
}

// Satellite: the engine's result cache must key on the generation's
// cache_id, so an answer cached against generation N is unreachable
// once N+1 publishes — a stale cache hit would otherwise serve deleted
// documents forever.
TEST(LifecycleEngineTest, ResultCacheIsolatesGenerations) {
  ScopedTempDir dir;
  auto family = DynamicFamily::Create(dir.File("fam.spinefam"),
                                      Alphabet::Dna(), DynamicFamily::Options{});
  ASSERT_TRUE(family.ok());
  ASSERT_TRUE((*family)->InsertDocument("ACGTACGT").ok());

  engine::QueryEngine engine({.threads = 2, .cache_bytes = 1 << 20});
  const std::vector<Query> queries = {Query::FindAll("ACGT"),
                                      Query::Contains("ACGT")};

  engine::BatchStats stats;
  std::vector<QueryResult> first = engine.ExecuteBatch(**family, queries,
                                                       &stats);
  ASSERT_EQ(first[0].hits.size(), 2u);
  EXPECT_EQ(stats.cache_hits, 0u);

  std::vector<QueryResult> second = engine.ExecuteBatch(**family, queries,
                                                        &stats);
  EXPECT_EQ(stats.cache_hits, 2u);  // same generation: served from cache
  EXPECT_TRUE(second[0].SameAnswer(first[0]));

  // Swap the generation: delete the only document, insert another one
  // with a different answer for the same pattern.
  ASSERT_TRUE((*family)->DeleteDocument(0).ok());
  ASSERT_TRUE((*family)->InsertDocument("GGGGACGT").ok());

  std::vector<QueryResult> third = engine.ExecuteBatch(**family, queries,
                                                       &stats);
  EXPECT_EQ(stats.cache_hits, 0u) << "stale generation served from cache";
  ASSERT_EQ(third[0].hits.size(), 1u);
  EXPECT_EQ(third[0].hits[0].pos, 4u);
}

}  // namespace
}  // namespace spine::shard
