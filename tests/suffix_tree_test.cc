// Tests for the Ukkonen suffix-tree baseline: construction invariants,
// search vs the brute-force oracle, and matcher parity with SPINE.

#include "suffix_tree/suffix_tree.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/matcher.h"
#include "naive/naive_index.h"
#include "suffix_tree/st_matcher.h"

namespace spine {
namespace {

SuffixTree Build(std::string_view s) {
  SuffixTree tree(Alphabet::Dna());
  Status status = tree.AppendString(s);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return tree;
}

TEST(SuffixTreeTest, EmptyTree) {
  SuffixTree tree(Alphabet::Dna());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Contains(""));
  EXPECT_FALSE(tree.Contains("a"));
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(SuffixTreeTest, RejectsForeignCharacters) {
  SuffixTree tree(Alphabet::Dna());
  EXPECT_FALSE(tree.Append('x').ok());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(SuffixTreeTest, BasicContains) {
  SuffixTree tree = Build("ACCACAACA");
  EXPECT_TRUE(tree.Contains("CCAC"));
  EXPECT_TRUE(tree.Contains("ACCACAACA"));
  EXPECT_TRUE(tree.Contains("A"));
  EXPECT_FALSE(tree.Contains("ACCAA"));
  EXPECT_FALSE(tree.Contains("G"));
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(SuffixTreeTest, FindAllOnRepeats) {
  SuffixTree tree = Build("ACACACA");
  EXPECT_EQ(tree.FindAll("ACA"), (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_EQ(tree.FindAll("ACACACA"), (std::vector<uint32_t>{0}));
  EXPECT_TRUE(tree.FindAll("CC").empty());
}

TEST(SuffixTreeTest, NodeCountBounded) {
  SuffixTree tree = Build("ACGTACGTACGGTTACA");
  EXPECT_LE(tree.node_count(), 2 * tree.size() + 1);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(SuffixTreeTest, OnlineConstructionMatchesOracleAtEveryPrefix) {
  const std::string s = "ACCACAACAGTTGCATCAACCACA";
  SuffixTree tree(Alphabet::Dna());
  for (size_t i = 0; i < s.size(); ++i) {
    ASSERT_TRUE(tree.Append(s[i]).ok());
    std::string_view prefix(s.data(), i + 1);
    ASSERT_TRUE(tree.Validate().ok()) << "prefix " << prefix;
    // Spot-check a few patterns at each step.
    for (size_t start = 0; start <= i; start += 3) {
      std::string_view pattern = prefix.substr(start, 4);
      ASSERT_EQ(tree.FindAll(pattern),
                naive::FindAllOccurrences(prefix, pattern))
          << "prefix " << prefix << " pattern " << pattern;
    }
  }
}

struct StCase {
  uint32_t sigma;
  uint32_t length;
  uint64_t seed;
};

class SuffixTreeOracleTest : public ::testing::TestWithParam<StCase> {};

TEST_P(SuffixTreeOracleTest, FindAllMatchesBruteForce) {
  const StCase param = GetParam();
  Rng rng(param.seed);
  const char* letters = "ACGT";
  std::string s;
  for (uint32_t i = 0; i < param.length; ++i) {
    s.push_back(letters[rng.Below(param.sigma)]);
  }
  SuffixTree tree = Build(s);
  ASSERT_TRUE(tree.Validate().ok());
  for (uint32_t start = 0; start < param.length; ++start) {
    for (uint32_t len = 1; start + len <= param.length; ++len) {
      std::string_view pattern = std::string_view(s).substr(start, len);
      ASSERT_EQ(tree.FindAll(pattern), naive::FindAllOccurrences(s, pattern))
          << "string " << s << " pattern " << pattern;
    }
  }
  for (int trial = 0; trial < 200; ++trial) {
    std::string pattern;
    for (uint32_t i = 0; i < 1 + rng.Below(10); ++i) {
      pattern.push_back(letters[rng.Below(param.sigma)]);
    }
    ASSERT_EQ(tree.Contains(pattern), s.find(pattern) != std::string::npos)
        << "string " << s << " pattern " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomStrings, SuffixTreeOracleTest,
    ::testing::Values(StCase{2, 24, 61}, StCase{2, 64, 62}, StCase{2, 120, 63},
                      StCase{3, 80, 64}, StCase{4, 100, 65},
                      StCase{4, 180, 66}),
    [](const ::testing::TestParamInfo<StCase>& info) {
      return "sigma" + std::to_string(info.param.sigma) + "_len" +
             std::to_string(info.param.length) + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------
// Matcher parity: suffix-tree streaming matcher == SPINE matcher ==
// brute force, and ST checks more nodes than SPINE (Table 6's claim).
// ---------------------------------------------------------------------

TEST(StMatcherTest, MatchesEqualNaiveAndSpine) {
  Rng rng(88);
  const char* letters = "ACGT";
  for (int round = 0; round < 150; ++round) {
    uint32_t sigma = 2 + static_cast<uint32_t>(rng.Below(3));
    uint32_t dlen = 8 + static_cast<uint32_t>(rng.Below(120));
    uint32_t qlen = 4 + static_cast<uint32_t>(rng.Below(100));
    uint32_t min_len = 1 + static_cast<uint32_t>(rng.Below(4));
    std::string data, query;
    for (uint32_t i = 0; i < dlen; ++i)
      data.push_back(letters[rng.Below(sigma)]);
    for (uint32_t i = 0; i < qlen; ++i)
      query.push_back(letters[rng.Below(sigma)]);

    SuffixTree tree = Build(data);
    SpineIndex index(Alphabet::Dna());
    ASSERT_TRUE(index.AppendString(data).ok());

    auto st_matches = FindMaximalMatches(tree, query, min_len);
    auto spine_matches = FindMaximalMatches(index, query, min_len);
    auto expected = naive::MaximalMatches(data, query, min_len);

    ASSERT_EQ(st_matches.size(), expected.size())
        << "data=" << data << " query=" << query;
    for (size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(st_matches[k].query_pos, expected[k].query_pos);
      EXPECT_EQ(st_matches[k].length, expected[k].length);
      EXPECT_EQ(spine_matches[k].query_pos, expected[k].query_pos);
      EXPECT_EQ(spine_matches[k].length, expected[k].length);
    }
  }
}

TEST(StMatcherTest, OccurrenceExpansionMatchesOracle) {
  std::string data = "ACACACGTACACACGTAC";
  std::string query = "CACACGTT";
  SuffixTree tree = Build(data);
  auto matches = FindMaximalMatches(tree, query, 3);
  auto expanded = CollectAllOccurrences(tree, query, matches);
  ASSERT_EQ(expanded.size(), matches.size());
  for (const auto& occ : expanded) {
    std::string sub(query.substr(occ.match.query_pos, occ.match.length));
    EXPECT_EQ(occ.data_positions, naive::FindAllOccurrences(data, sub)) << sub;
  }
}

TEST(StMatcherTest, ForeignQueryCharacters) {
  SuffixTree tree = Build("ACGTACGT");
  auto matches = FindMaximalMatches(tree, "ACG?ACGT", 3);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].length, 3u);
  EXPECT_EQ(matches[1].length, 4u);
}

}  // namespace
}  // namespace spine
