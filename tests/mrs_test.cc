// Tests for the MRS-style frequency filter index (the paper's
// Section 7 filter+verify comparator).

#include "mrs/frequency_filter.h"

#include <string>

#include <gtest/gtest.h>

#include "align/approximate.h"
#include "common/rng.h"
#include "compact/compact_spine.h"
#include "seq/generator.h"

namespace spine::mrs {
namespace {

TEST(FrequencyFilterTest, BuildRejectsBadInput) {
  EXPECT_FALSE(
      FrequencyFilterIndex::Build(Alphabet::Dna(), "ACGX").ok());
  FrequencyFilterIndex::Options options;
  options.frame_size = 2;
  EXPECT_FALSE(
      FrequencyFilterIndex::Build(Alphabet::Dna(), "ACGT", options).ok());
}

TEST(FrequencyFilterTest, ExactHitsFound) {
  FrequencyFilterIndex::Options options;
  options.frame_size = 4;
  auto index =
      FrequencyFilterIndex::Build(Alphabet::Dna(), "ACGTACGTACGT", options);
  ASSERT_TRUE(index.ok());
  auto hits = index->FindApproximate("GTAC", 0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].data_pos, 2u);
  EXPECT_EQ(hits[1].data_pos, 6u);
  EXPECT_EQ(hits[0].edits, 0u);
}

TEST(FrequencyFilterTest, FilterActuallyPrunes) {
  // Long A-run with one embedded GGGGCCCC block: queries about the
  // block must prune the A-frames wholesale.
  std::string text(4096, 'A');
  text.replace(2048, 8, "GGGGCCCC");
  FrequencyFilterIndex::Options options;
  options.frame_size = 64;
  auto index = FrequencyFilterIndex::Build(Alphabet::Dna(), text, options);
  ASSERT_TRUE(index.ok());
  uint64_t pruned = 0, verified = 0;
  auto hits = index->FindApproximate("GGGGCCCC", 1, &pruned, &verified);
  ASSERT_FALSE(hits.empty());
  bool exact_found = false;
  for (const auto& hit : hits) {
    if (hit.data_pos == 2048 && hit.edits == 0) exact_found = true;
  }
  EXPECT_TRUE(exact_found);
  // Almost every frame is pure A and gets pruned.
  EXPECT_GT(pruned, 55u);
  EXPECT_LT(verified, 512u);  // only frames near the block verify
}

TEST(FrequencyFilterTest, AgreesWithSpineSeedAndExtend) {
  Rng rng(88);
  const char* letters = "ACGT";
  for (int round = 0; round < 15; ++round) {
    uint32_t n = 200 + static_cast<uint32_t>(rng.Below(800));
    std::string text;
    for (uint32_t i = 0; i < n; ++i) text.push_back(letters[rng.Below(3)]);

    FrequencyFilterIndex::Options options;
    options.frame_size = 16;
    auto filter = FrequencyFilterIndex::Build(Alphabet::Dna(), text, options);
    ASSERT_TRUE(filter.ok());
    CompactSpineIndex spine(Alphabet::Dna());
    ASSERT_TRUE(spine.AppendString(text).ok());

    for (int trial = 0; trial < 6; ++trial) {
      uint32_t m = 6 + static_cast<uint32_t>(rng.Below(10));
      std::string pattern;
      if (trial % 2 == 0 && m < n) {
        pattern = text.substr(rng.Below(n - m), m);
      } else {
        for (uint32_t i = 0; i < m; ++i) {
          pattern.push_back(letters[rng.Below(3)]);
        }
      }
      uint32_t k = static_cast<uint32_t>(rng.Below(3));
      if (k >= pattern.size()) continue;
      auto filter_hits = filter->FindApproximate(pattern, k);
      auto spine_hits = align::FindApproximate(spine, pattern, k);
      ASSERT_EQ(filter_hits.size(), spine_hits.size())
          << "text=" << text << " pattern=" << pattern << " k=" << k;
      for (size_t i = 0; i < spine_hits.size(); ++i) {
        ASSERT_EQ(filter_hits[i].data_pos, spine_hits[i].data_pos);
        ASSERT_EQ(filter_hits[i].edits, spine_hits[i].edits);
      }
    }
  }
}

TEST(FrequencyFilterTest, SketchIsTiny) {
  seq::GeneratorOptions gen;
  gen.length = 100'000;
  gen.seed = 4;
  std::string text = seq::GenerateSequence(Alphabet::Dna(), gen);
  auto index = FrequencyFilterIndex::Build(Alphabet::Dna(), text);
  ASSERT_TRUE(index.ok());
  // sigma^2 2-gram counters x 2 bytes per 64-char frame = 0.5 B/char
  // for DNA — ~24x smaller than the complete SPINE index.
  EXPECT_LT(static_cast<double>(index->SketchBytes()) / text.size(), 0.6);
  // ...but the text must be retained (not self-contained like SPINE).
  EXPECT_GT(index->MemoryBytes(), text.size());
}

}  // namespace
}  // namespace spine::mrs
