// Tests for the streaming maximal-match finder and the deferred
// all-occurrences backbone scan (Section 4 of the paper).

#include "core/matcher.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernel/kernel.h"
#include "naive/naive_index.h"
#include "seq/generator.h"
#include "test_util.h"

namespace spine {
namespace {

SpineIndex Build(const Alphabet& alphabet, std::string_view s) {
  SpineIndex index(alphabet);
  Status status = index.AppendString(s);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return index;
}

std::vector<naive::NaiveMatch> AsNaive(const std::vector<MaximalMatch>& in) {
  std::vector<naive::NaiveMatch> out;
  out.reserve(in.size());
  for (const MaximalMatch& m : in) out.push_back({m.query_pos, m.length});
  return out;
}

TEST(MatcherTest, ExactCopyIsOneFullLengthMatch) {
  std::string s = "ACGTACGGTACT";
  SpineIndex index = Build(Alphabet::Dna(), s);
  auto matches = FindMaximalMatches(index, s, 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].query_pos, 0u);
  EXPECT_EQ(matches[0].length, s.size());
  EXPECT_EQ(matches[0].first_end, s.size());
}

TEST(MatcherTest, NoCommonCharactersYieldsNothing) {
  SpineIndex index = Build(Alphabet::Dna(), "AAAA");
  EXPECT_TRUE(FindMaximalMatches(index, "CCCC", 1).empty());
}

TEST(MatcherTest, MinLenFilters) {
  SpineIndex index = Build(Alphabet::Dna(), "ACGT");
  // Query shares only single characters and pairs.
  auto all = FindMaximalMatches(index, "ACTTGT", 1);
  auto pairs = FindMaximalMatches(index, "ACTTGT", 2);
  EXPECT_GT(all.size(), pairs.size());
  for (const auto& m : pairs) EXPECT_GE(m.length, 2u);
}

TEST(MatcherTest, PaperSection4Example) {
  // The example of Section 4: S1/S2 with threshold 6. The paper bolds
  // the shared substrings; with threshold 6 the long shared regions
  // around "gacgat...acgaga" must be reported.
  std::string s1 = "acaccgacgatacgagattacgagacgagaatacaacag";
  std::string s2 = "catagagagacgattacgagaaaacgggaaagacgatcc";
  SpineIndex index = Build(Alphabet::Dna(), s1);
  auto matches = FindMaximalMatches(index, s2, 6);
  ASSERT_FALSE(matches.empty());
  // Every reported substring really is common to both strings.
  for (const auto& m : matches) {
    std::string sub = s2.substr(m.query_pos, m.length);
    EXPECT_NE(s1.find(sub), std::string::npos) << sub;
    // Maximality to the right: extending by one query character must
    // leave s1 (or hit the end of s2).
    if (m.query_pos + m.length < s2.size()) {
      std::string extended = s2.substr(m.query_pos, m.length + 1);
      EXPECT_EQ(s1.find(extended), std::string::npos) << extended;
    }
  }
  // The dominant shared block "ttacgaga" / "gacgat" region: the query
  // substring "attacgagaa"... at least one match of length >= 8 exists
  // ("ttacgaga" occurs in both).
  uint32_t longest = 0;
  for (const auto& m : matches) longest = std::max(longest, m.length);
  EXPECT_GE(longest, 8u);
}

TEST(MatcherTest, ForeignQueryCharactersActAsMismatches) {
  SpineIndex index = Build(Alphabet::Dna(), "ACGTACGT");
  auto matches = FindMaximalMatches(index, "ACG?ACGT", 3);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].query_pos, 0u);
  EXPECT_EQ(matches[0].length, 3u);
  EXPECT_EQ(matches[1].query_pos, 4u);
  EXPECT_EQ(matches[1].length, 4u);
}

TEST(MatcherTest, StatsAreCounted) {
  SpineIndex index = Build(Alphabet::Dna(), "ACGTACGGTACTGACT");
  SearchStats stats;
  FindMaximalMatches(index, "TACGATCGGT", 2, &stats);
  EXPECT_GT(stats.nodes_checked, 0u);
}

TEST(MatcherTest, CollectAllOccurrencesFindsEveryOccurrence) {
  std::string s = "ACACACGTACACACGT";
  SpineIndex index = Build(Alphabet::Dna(), s);
  auto matches = FindMaximalMatches(index, "CACGTA", 4);
  ASSERT_FALSE(matches.empty());
  auto expanded = CollectAllOccurrences(index, matches);
  ASSERT_EQ(expanded.size(), matches.size());
  for (const auto& occ : expanded) {
    std::string sub = s.substr(occ.match.first_end - occ.match.length,
                               occ.match.length);
    EXPECT_EQ(occ.data_positions, naive::FindAllOccurrences(s, sub)) << sub;
  }
}

TEST(MatcherTest, CollectAllOccurrencesOnEmptyMatchList) {
  SpineIndex index = Build(Alphabet::Dna(), "ACGT");
  EXPECT_TRUE(CollectAllOccurrences(index, {}).empty());
}

// ---------------------------------------------------------------------
// Property tests: streaming matcher == brute-force matching statistics.
// ---------------------------------------------------------------------

struct MatchCase {
  uint32_t sigma;
  uint32_t data_len;
  uint32_t query_len;
  uint32_t min_len;
  uint64_t seed;
};

class MatcherOracleTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(MatcherOracleTest, MatchesEqualBruteForce) {
  const MatchCase param = GetParam();
  Rng rng(param.seed);
  const char* letters = "ACGT";
  auto random_string = [&](uint32_t len) {
    std::string s;
    for (uint32_t i = 0; i < len; ++i) {
      s.push_back(letters[rng.Below(param.sigma)]);
    }
    return s;
  };
  std::string data = random_string(param.data_len);
  std::string query = random_string(param.query_len);
  SpineIndex index = Build(Alphabet::Dna(), data);

  auto got = AsNaive(FindMaximalMatches(index, query, param.min_len));
  auto want = naive::MaximalMatches(data, query, param.min_len);
  ASSERT_EQ(got, want) << "data=" << data << " query=" << query;

  // And the first-occurrence nodes are correct.
  for (const MaximalMatch& m :
       FindMaximalMatches(index, query, param.min_len)) {
    std::string sub = query.substr(m.query_pos, m.length);
    ASSERT_EQ(static_cast<int64_t>(m.first_end),
              naive::FirstOccurrenceEnd(data, sub))
        << sub;
  }
}

TEST_P(MatcherOracleTest, RelatedSequencesShareLongMatches) {
  const MatchCase param = GetParam();
  seq::GeneratorOptions gen;
  gen.length = param.data_len;
  gen.seed = param.seed;
  std::string data = seq::GenerateSequence(Alphabet::Dna(), gen);
  seq::MutateOptions mut;
  mut.seed = param.seed + 1;
  std::string query = seq::MutateCopy(Alphabet::Dna(), data, mut);

  SpineIndex index = Build(Alphabet::Dna(), data);
  auto got = AsNaive(FindMaximalMatches(index, query, param.min_len));
  auto want = naive::MaximalMatches(data, query, param.min_len);
  ASSERT_EQ(got, want);
  EXPECT_FALSE(got.empty());  // divergent copies still share substrings
}

INSTANTIATE_TEST_SUITE_P(
    RandomPairs, MatcherOracleTest,
    ::testing::Values(MatchCase{2, 60, 40, 1, 51}, MatchCase{2, 80, 80, 2, 52},
                      MatchCase{2, 120, 60, 3, 53},
                      MatchCase{3, 100, 100, 2, 54},
                      MatchCase{4, 150, 120, 1, 55},
                      MatchCase{4, 200, 200, 4, 56},
                      MatchCase{4, 300, 100, 6, 57}),
    [](const ::testing::TestParamInfo<MatchCase>& info) {
      return "case_seed" + std::to_string(info.param.seed);
    });

// Brute-force matching statistic for the oracle comparison.
uint32_t NaiveMs(std::string_view data, std::string_view query, uint32_t q) {
  uint32_t best = 0;
  for (size_t d = 0; d < data.size(); ++d) {
    uint32_t len = 0;
    while (q + len < query.size() && d + len < data.size() &&
           query[q + len] == data[d + len]) {
      ++len;
    }
    best = std::max(best, len);
  }
  return best;
}

TEST(MatcherTest, MatchingStatisticsAgainstBruteForce) {
  Rng rng(9090);
  const char* letters = "ACGT";
  for (int round = 0; round < 60; ++round) {
    uint32_t sigma = 2 + static_cast<uint32_t>(rng.Below(3));
    uint32_t dlen = 6 + static_cast<uint32_t>(rng.Below(100));
    uint32_t qlen = 1 + static_cast<uint32_t>(rng.Below(80));
    std::string data, query;
    for (uint32_t i = 0; i < dlen; ++i)
      data.push_back(letters[rng.Below(sigma)]);
    for (uint32_t i = 0; i < qlen; ++i)
      query.push_back(letters[rng.Below(sigma)]);
    SpineIndex index = Build(Alphabet::Dna(), data);
    std::vector<uint32_t> ms = GenericMatchingStatistics(index, query);
    ASSERT_EQ(ms.size(), query.size());
    for (uint32_t q = 0; q < qlen; ++q) {
      ASSERT_EQ(ms[q], NaiveMs(data, query, q))
          << "data=" << data << " query=" << query << " q=" << q;
    }
  }
}

TEST(MatcherTest, MatchingStatisticsOnExactCopy) {
  std::string s = "ACGGTACGT";
  SpineIndex index = Build(Alphabet::Dna(), s);
  std::vector<uint32_t> ms = GenericMatchingStatistics(index, s);
  for (uint32_t q = 0; q < s.size(); ++q) {
    EXPECT_EQ(ms[q], s.size() - q);  // every suffix occurs in full
  }
}

// Regression for the O(n) decay-rule implementation of
// GenericMatchingStatistics: the naive definition applies every maximal
// match to every position it covers (quadratic when long matches overlap
// densely, as on repetitive queries). Both must agree exactly.
std::vector<uint32_t> PerMatchInnerLoopMs(const SpineIndex& index,
                                          std::string_view query) {
  std::vector<uint32_t> ms(query.size(), 0);
  for (const MaximalMatch& match :
       GenericFindMaximalMatches(index, query, 1)) {
    for (uint32_t q = match.query_pos; q < match.query_pos + match.length;
         ++q) {
      uint32_t remaining = match.query_pos + match.length - q;
      if (remaining > ms[q]) ms[q] = remaining;
    }
  }
  return ms;
}

TEST(MatcherTest, MatchingStatisticsDecayRuleOnRepetitiveQueries) {
  // Highly repetitive inputs: long runs and short-period repeats, where
  // maximal matches are long and overlap at almost every position.
  const std::string data =
      std::string(400, 'A') + "C" + std::string(200, 'A') + "GTGTGTGT";
  SpineIndex index = Build(Alphabet::Dna(), data);
  const std::vector<std::string> queries = {
      std::string(1500, 'A'),
      std::string(300, 'A') + "C" + std::string(300, 'A'),
      [] {
        std::string q;
        for (int i = 0; i < 400; ++i) q += "GT";
        return q;
      }(),
      "T" + std::string(250, 'A') + "CGT",
  };
  for (const std::string& query : queries) {
    EXPECT_EQ(GenericMatchingStatistics(index, query),
              PerMatchInnerLoopMs(index, query))
        << "query of length " << query.size();
  }
}

// Long-pattern coverage for the bulk comparison path: queries longer
// than one 4 KiB page whose matched runs straddle the packed-word and
// page boundaries. The planted splice matches must be found, and the
// full result list must be identical under every dispatch level.
TEST(MatcherTest, LongPatternsStraddlePagesUnderEveryKernel) {
  const std::string text = spine::test::TestCorpus(20'000, /*seed=*/5);
  SpineIndex index = Build(Alphabet::Dna(), text);

  // Two far-apart slices, fused with an out-of-alphabet byte: the
  // matcher must report one >4096-char match on each side of it.
  const std::string query =
      text.substr(1'000, 5'000) + "#" + text.substr(9'000, 4'097);
  auto has_match = [](const std::vector<MaximalMatch>& matches,
                      uint32_t query_pos, uint32_t length) {
    for (const MaximalMatch& m : matches) {
      if (m.query_pos == query_pos && m.length >= length) return true;
    }
    return false;
  };

  std::vector<MaximalMatch> scalar_matches;
  for (const kernel::Kind kind : kernel::SupportedKinds()) {
    ASSERT_TRUE(kernel::Force(kind).ok());
    SearchStats stats;
    std::vector<MaximalMatch> matches =
        FindMaximalMatches(index, query, 64, &stats);
    EXPECT_TRUE(has_match(matches, 0, 5'000)) << kernel::KindName(kind);
    EXPECT_TRUE(has_match(matches, 5'001, 4'097)) << kernel::KindName(kind);
    EXPECT_GE(stats.nodes_checked, query.size() - 1);
    if (kind == kernel::Kind::kScalar) {
      scalar_matches = std::move(matches);
    } else {
      EXPECT_EQ(matches, scalar_matches) << kernel::KindName(kind);
    }
  }

  // A >one-page pattern searched directly: all occurrences agree with
  // the brute-force text scan under every kernel.
  const std::string pattern = text.substr(5'000, 4'097);
  for (const kernel::Kind kind : kernel::SupportedKinds()) {
    ASSERT_TRUE(kernel::Force(kind).ok());
    EXPECT_EQ(index.FindAll(pattern), spine::test::OracleFindAll(text, pattern))
        << kernel::KindName(kind);
  }
  (void)kernel::ForceByName("auto");
}

TEST(MatcherStress, ManyRandomPairs) {
  Rng rng(777);
  const char* letters = "ACGT";
  for (int round = 0; round < 200; ++round) {
    uint32_t sigma = 2 + static_cast<uint32_t>(rng.Below(3));
    uint32_t dlen = 4 + static_cast<uint32_t>(rng.Below(80));
    uint32_t qlen = 1 + static_cast<uint32_t>(rng.Below(80));
    uint32_t min_len = 1 + static_cast<uint32_t>(rng.Below(4));
    std::string data, query;
    for (uint32_t i = 0; i < dlen; ++i)
      data.push_back(letters[rng.Below(sigma)]);
    for (uint32_t i = 0; i < qlen; ++i)
      query.push_back(letters[rng.Below(sigma)]);
    SpineIndex index = Build(Alphabet::Dna(), data);
    ASSERT_EQ(AsNaive(FindMaximalMatches(index, query, min_len)),
              naive::MaximalMatches(data, query, min_len))
        << "data=" << data << " query=" << query << " min=" << min_len;
  }
}

}  // namespace
}  // namespace spine
