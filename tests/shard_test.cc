// shard::ShardedIndex tests: exact equivalence with the monolithic
// compact index on randomized DNA/protein corpora for every query kind
// (boundary-straddling patterns included), loud pattern admission,
// .spinefam save/load round-trips, bit-flip corruption detection, and
// structural verification.

#include "shard/sharded_index.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compact/compact_spine.h"
#include "core/query.h"
#include "test_util.h"

namespace spine::shard {
namespace {

using spine::test::RandomDna;
using spine::test::RandomProtein;
using spine::test::ScopedTempDir;

// Every query kind over `pattern`, including occurrence-expanded
// maximal matches.
std::vector<Query> AllKinds(const std::string& pattern, uint32_t min_len) {
  return {Query::Contains(pattern), Query::FindAll(pattern),
          Query::MatchingStats(pattern),
          Query::MaximalMatches(pattern, min_len),
          Query::MaximalMatches(pattern, min_len, /*expand=*/true)};
}

void ExpectFamilyMatchesMonolithic(const CompactSpineIndex& mono,
                                   const ShardedIndex& family,
                                   const std::string& pattern,
                                   const std::string& label) {
  for (const Query& query : AllKinds(pattern, 4)) {
    QueryResult expected = ExecuteQuery(mono, query);
    QueryResult got = family.Execute(query);
    ASSERT_TRUE(got.ok()) << label << ": " << got.error;
    EXPECT_TRUE(got.SameAnswer(expected))
        << label << ", kind " << QueryKindName(query.kind) << ", pattern \""
        << pattern << "\"";
  }
}

TEST(ShardedIndexTest, MatchesMonolithicOnRandomCorpora) {
  Rng rng(1234);
  const struct {
    Alphabet alphabet;
    bool protein;
    uint32_t length;
  } corpora[] = {
      {Alphabet::Dna(), false, 700},
      {Alphabet::Dna(), false, 5'000},
      {Alphabet::Protein(), true, 2'500},
  };
  for (const auto& corpus_spec : corpora) {
    const std::string text = corpus_spec.protein
                                 ? RandomProtein(rng, corpus_spec.length)
                                 : RandomDna(rng, corpus_spec.length);
    CompactSpineIndex mono(corpus_spec.alphabet);
    ASSERT_TRUE(mono.AppendString(text).ok());

    for (uint32_t shards : {1u, 2u, 3u, 7u}) {
      auto family = ShardedIndex::Build(corpus_spec.alphabet, text,
                                        {.shards = shards, .max_pattern = 32});
      ASSERT_TRUE(family.ok()) << family.status().ToString();
      const std::string label = "n=" + std::to_string(text.size()) +
                                " K=" + std::to_string(shards);
      EXPECT_TRUE((*family)->VerifyStructure().ok()) << label;

      // Random slices (hits) and perturbed slices (misses).
      for (int i = 0; i < 25; ++i) {
        const uint32_t len = 1 + rng.Below(32);
        const uint32_t offset =
            static_cast<uint32_t>(rng.Below(text.size() - len));
        std::string pattern = text.substr(offset, len);
        ExpectFamilyMatchesMonolithic(mono, **family, pattern, label);
        pattern[len / 2] = pattern[len / 2] == 'A' ? 'C' : 'A';
        ExpectFamilyMatchesMonolithic(mono, **family, pattern, label);
      }
      // Patterns centered on every shard boundary: these straddle the
      // core split and are only findable through the overlap margin.
      for (uint32_t s = 1; s < (*family)->shard_count(); ++s) {
        const uint64_t boundary = (*family)->info(s).core_start;
        for (uint32_t len : {2u, 9u, 31u}) {
          if (boundary < len || boundary + len > text.size()) continue;
          ExpectFamilyMatchesMonolithic(
              mono, **family, text.substr(boundary - len / 2, len),
              label + " boundary@" + std::to_string(boundary));
        }
      }
    }
  }
}

TEST(ShardedIndexTest, TinyTextsAndEdgePatterns) {
  Rng rng(9);
  for (const std::string& text : {std::string("A"), std::string("ACG"),
                                  RandomDna(rng, 17)}) {
    CompactSpineIndex mono(Alphabet::Dna());
    ASSERT_TRUE(mono.AppendString(text).ok());
    // More shards than characters: K clamps to the text length.
    auto family = ShardedIndex::Build(Alphabet::Dna(), text,
                                      {.shards = 8, .max_pattern = 32});
    ASSERT_TRUE(family.ok()) << family.status().ToString();
    EXPECT_LE((*family)->shard_count(), text.size());
    ExpectFamilyMatchesMonolithic(mono, **family, text, "whole-text");
    ExpectFamilyMatchesMonolithic(mono, **family, text.substr(0, 1), "first");
    ExpectFamilyMatchesMonolithic(mono, **family,
                                  text.substr(text.size() - 1), "last");
    ExpectFamilyMatchesMonolithic(mono, **family, "", "empty");
    ExpectFamilyMatchesMonolithic(mono, **family, "T", "maybe-missing");
  }
}

TEST(ShardedIndexTest, RejectsOverlongPatternsLoudly) {
  Rng rng(5);
  const std::string text = RandomDna(rng, 400);
  auto family = ShardedIndex::Build(Alphabet::Dna(), text,
                                    {.shards = 4, .max_pattern = 8});
  ASSERT_TRUE(family.ok());

  const std::string long_pattern = text.substr(10, 9);  // margin + 1
  for (const Query& query : AllKinds(long_pattern, 4)) {
    QueryResult result = (*family)->Execute(query);
    EXPECT_FALSE(result.ok()) << QueryKindName(query.kind);
    EXPECT_EQ(result.status_code, StatusCode::kInvalidArgument)
        << QueryKindName(query.kind);
    EXPECT_NE(result.error.find("max_pattern"), std::string::npos)
        << QueryKindName(query.kind);
    EXPECT_TRUE(result.hits.empty());
    EXPECT_TRUE(result.matching_stats.empty());
  }
  // Exactly the margin is admitted.
  QueryResult ok = (*family)->Execute(Query::FindAll(text.substr(10, 8)));
  EXPECT_TRUE(ok.ok()) << ok.error;
  EXPECT_TRUE(ok.found);
}

TEST(ShardedIndexTest, BuildValidatesOptions) {
  EXPECT_EQ(ShardedIndex::Build(Alphabet::Dna(), "ACGT", {.shards = 0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShardedIndex::Build(Alphabet::Dna(), "ACGT",
                                {.shards = 2, .max_pattern = 0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedIndexTest, ParallelBuildMatchesSingleThreaded) {
  Rng rng(77);
  const std::string text = RandomDna(rng, 6'000);
  auto serial = ShardedIndex::Build(
      Alphabet::Dna(), text,
      {.shards = 4, .max_pattern = 24, .build_threads = 1});
  auto parallel = ShardedIndex::Build(
      Alphabet::Dna(), text,
      {.shards = 4, .max_pattern = 24, .build_threads = 4});
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  for (int i = 0; i < 20; ++i) {
    const std::string pattern =
        text.substr(rng.Below(text.size() - 24), 1 + rng.Below(24));
    for (const Query& query : AllKinds(pattern, 4)) {
      EXPECT_TRUE((*serial)->Execute(query).SameAnswer(
          (*parallel)->Execute(query)))
          << QueryKindName(query.kind) << " \"" << pattern << "\"";
    }
  }
}

TEST(ShardedIndexTest, SaveLoadRoundTripIsExact) {
  ScopedTempDir dir("shard_roundtrip");
  Rng rng(31);
  const std::string text = RandomProtein(rng, 3'000);
  auto built = ShardedIndex::Build(Alphabet::Protein(), text,
                                   {.shards = 3, .max_pattern = 20});
  ASSERT_TRUE(built.ok());
  const std::string path = dir.File("family.spinefam");
  ASSERT_TRUE((*built)->Save(path).ok());

  auto loaded = ShardedIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->kind(), core::IndexKind::kSharded);
  EXPECT_EQ((*loaded)->size(), text.size());
  EXPECT_EQ((*loaded)->shard_count(), (*built)->shard_count());
  EXPECT_EQ((*loaded)->max_pattern(), (*built)->max_pattern());
  EXPECT_EQ((*loaded)->alphabet().kind(), Alphabet::Kind::kProtein);
  EXPECT_TRUE((*loaded)->VerifyStructure().ok());

  for (int i = 0; i < 25; ++i) {
    const std::string pattern =
        text.substr(rng.Below(text.size() - 20), 1 + rng.Below(20));
    for (const Query& query : AllKinds(pattern, 4)) {
      QueryResult before = (*built)->Execute(query);
      QueryResult after = (*loaded)->Execute(query);
      ASSERT_TRUE(after.ok()) << after.error;
      EXPECT_TRUE(after.SameAnswer(before))
          << QueryKindName(query.kind) << " \"" << pattern << "\"";
    }
  }
}

// Flips one byte of `path` at `offset`, runs `fn`, restores the byte.
template <typename Fn>
void WithFlippedByte(const std::string& path, uint64_t offset, Fn fn) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  ASSERT_TRUE(f.good()) << path << " shorter than " << offset;
  const char flipped = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&flipped, 1);
  f.flush();
  ASSERT_TRUE(f.good());
  fn();
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
  f.flush();
}

TEST(ShardedIndexTest, DetectsAnySingleBitFlip) {
  ScopedTempDir dir("shard_bitflip");
  Rng rng(8);
  const std::string text = RandomDna(rng, 2'000);
  auto built = ShardedIndex::Build(Alphabet::Dna(), text,
                                   {.shards = 2, .max_pattern = 16});
  ASSERT_TRUE(built.ok());
  const std::string path = dir.File("family.spinefam");
  ASSERT_TRUE((*built)->Save(path).ok());
  ASSERT_TRUE(ShardedIndex::Load(path).ok());  // pristine baseline

  std::vector<std::string> files = {path, path + ".shard0", path + ".shard1"};
  for (const std::string& file : files) {
    std::ifstream probe(file, std::ios::binary | std::ios::ate);
    ASSERT_TRUE(probe.good()) << file;
    const uint64_t size = static_cast<uint64_t>(probe.tellg());
    probe.close();
    // Sample offsets across the whole file, ends included.
    for (uint64_t offset :
         {uint64_t{4}, size / 4, size / 2, (3 * size) / 4, size - 1}) {
      WithFlippedByte(file, offset, [&] {
        auto corrupt = ShardedIndex::Load(path);
        EXPECT_FALSE(corrupt.ok())
            << file << " flipped at " << offset << " was not detected";
        if (!corrupt.ok()) {
          EXPECT_EQ(corrupt.status().code(), StatusCode::kCorruption)
              << file << " @ " << offset << ": "
              << corrupt.status().ToString();
        }
      });
    }
  }
  // Restored files load cleanly again.
  EXPECT_TRUE(ShardedIndex::Load(path).ok());

  // Truncation of the manifest and of a shard file are corruption too.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    spine::test::WriteFile(path, bytes.substr(0, bytes.size() / 2));
    auto truncated = ShardedIndex::Load(path);
    EXPECT_FALSE(truncated.ok());
    EXPECT_EQ(truncated.status().code(), StatusCode::kCorruption);
    spine::test::WriteFile(path, bytes);
  }
  {
    const std::string shard_file = path + ".shard1";
    std::ifstream in(shard_file, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    spine::test::WriteFile(shard_file, bytes.substr(0, bytes.size() - 7));
    auto truncated = ShardedIndex::Load(path);
    EXPECT_FALSE(truncated.ok());
    EXPECT_EQ(truncated.status().code(), StatusCode::kCorruption);
    spine::test::WriteFile(shard_file, bytes);
  }
  EXPECT_TRUE(ShardedIndex::Load(path).ok());

  // A missing shard file is an I/O error (the medium is absent, not
  // lying), still never a crash.
  ASSERT_EQ(std::remove((path + ".shard0").c_str()), 0);
  auto missing = ShardedIndex::Load(path);
  EXPECT_FALSE(missing.ok());
}

TEST(ShardedIndexTest, ManifestRejectsEscapingFilenames) {
  ScopedTempDir dir("shard_escape");
  Rng rng(4);
  const std::string text = RandomDna(rng, 500);
  auto built = ShardedIndex::Build(Alphabet::Dna(), text,
                                   {.shards = 2, .max_pattern = 8});
  ASSERT_TRUE(built.ok());
  const std::string path = dir.File("family.spinefam");
  ASSERT_TRUE((*built)->Save(path).ok());

  // Rewrite the manifest's first shard filename to point outside the
  // manifest's directory. The length stays equal so the layout (and
  // everything before the CRC footer) still parses; a correct loader
  // must reject it on the filename check or the checksum, never read
  // the traversal target.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string original = "family.spinefam.shard0";
  const std::string escape = "../family.spinefam.sha";
  ASSERT_EQ(original.size(), escape.size());
  const size_t at = bytes.find(original);
  ASSERT_NE(at, std::string::npos);
  bytes.replace(at, original.size(), escape);
  spine::test::WriteFile(path, bytes);

  auto tampered = ShardedIndex::Load(path);
  EXPECT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace spine::shard
