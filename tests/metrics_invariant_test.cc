// Differential/invariant tests tying the metrics registry to ground
// truth the components already expose: the registry is only useful if
// its counters agree exactly with the per-instance stats structs and
// with independently recomputed work. Every test measures registry
// *deltas* (after minus before) because the default registry is shared
// process-wide.
//
// In the SPINE_OBS_DISABLED build flavor the capture sites compile out,
// so the registry legitimately stays flat; those assertions skip.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compact/compact_spine.h"
#include "core/adapters.h"
#include "core/query.h"
#include "engine/query_engine.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_spine.h"
#include "storage/io_backend.h"
#include "storage/page_file.h"
#include "test_util.h"

namespace spine {
namespace {

using storage::BufferPool;
using storage::FaultInjectingBackend;
using storage::PageFile;
using storage::ReplacementPolicy;
using FaultKind = FaultInjectingBackend::FaultKind;
using spine::test::RandomDna;
using spine::test::RegistryDelta;
using spine::test::TempPath;

// Writes `pages` dense checksummed pages into a fresh PageFile.
Result<PageFile> MakePageFile(const std::string& path, uint64_t pages,
                              storage::IoBackend* backend) {
  Result<PageFile> file =
      PageFile::Create(path, PageFile::SyncMode::kNone, backend);
  if (!file.ok()) return file;
  std::vector<uint8_t> page(storage::kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    for (uint32_t i = 0; i < storage::kPageSize; ++i) {
      page[i] = static_cast<uint8_t>(i * 13 + p + 1);
    }
    storage::SealPageChecksum(p, page.data());
    Status status = file->WritePage(p, page.data());
    if (!status.ok()) return status;
  }
  return file;
}

// (1) Pool registry counters agree exactly with the pool's own IoStats
// over a randomized access pattern: hits + misses == FetchPage calls,
// and each named counter delta equals its struct field.
TEST(MetricsInvariantTest, PoolCountersMatchIoStats) {
  SPINE_SKIP_IF_OBS_DISABLED();
  Rng rng(2024);
  constexpr uint64_t kPages = 32;
  Result<PageFile> file = MakePageFile(TempPath("mi_pool.dat"), kPages,
                                       storage::PosixIoBackend());
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  RegistryDelta delta;
  BufferPool pool(&*file, /*frames=*/8, ReplacementPolicy::kLru);
  uint64_t fetches = 0;
  for (int i = 0; i < 500; ++i) {
    // Skewed pattern so both hits and misses (and evictions) occur.
    const uint64_t page_id =
        rng.Below(4) != 0 ? rng.Below(8) : rng.Below(kPages);
    ASSERT_NE(pool.FetchPage(page_id, false), nullptr);
    ++fetches;
  }

  const storage::IoStats& stats = pool.stats();
  EXPECT_EQ(stats.accesses(), fetches);
  EXPECT_EQ(delta.Counter("storage.pool.hits"), stats.hits);
  EXPECT_EQ(delta.Counter("storage.pool.misses"), stats.misses);
  EXPECT_EQ(delta.Counter("storage.pool.hits") +
                delta.Counter("storage.pool.misses"),
            fetches);
  EXPECT_EQ(delta.Counter("storage.pool.evictions"), stats.evictions);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);
  // Clean reads: no checksum traffic.
  EXPECT_EQ(delta.Counter("storage.pool.checksum_failures"), 0u);
  EXPECT_EQ(delta.Counter("storage.pool.checksum_healed"), 0u);
}

// (2) PageFile byte counters follow page reads/writes exactly
// (read_bytes == pages_read * kPageSize for real backend reads).
TEST(MetricsInvariantTest, PageFileByteCountersFollowPageOps) {
  SPINE_SKIP_IF_OBS_DISABLED();
  RegistryDelta delta;
  constexpr uint64_t kPages = 16;
  Result<PageFile> file = MakePageFile(TempPath("mi_file.dat"), kPages,
                                       storage::PosixIoBackend());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  std::vector<uint8_t> raw(storage::kPageSize);
  for (uint64_t p = 0; p < kPages; ++p) {
    ASSERT_TRUE(file->ReadPage(p, raw.data()).ok());
  }
  EXPECT_EQ(delta.Counter("storage.file.pages_written"), kPages);
  EXPECT_EQ(delta.Counter("storage.file.write_bytes"),
            kPages * storage::kPageSize);
  EXPECT_EQ(delta.Counter("storage.file.pages_read"), kPages);
  EXPECT_EQ(delta.Counter("storage.file.read_bytes"),
            kPages * storage::kPageSize);
}

// (3) A scheduled transient bit flip produces *exactly* one checksum
// failure, one heal, and one injected-fault count; a persistent flip
// (both the read and the heal re-read corrupted) produces one failure,
// zero heals, two injected faults.
TEST(MetricsInvariantTest, BitFlipSchedulesProduceExactIncrements) {
  SPINE_SKIP_IF_OBS_DISABLED();
  FaultInjectingBackend backend;
  Result<PageFile> file =
      MakePageFile(TempPath("mi_flip.dat"), /*pages=*/4, &backend);
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  {  // Transient: only the first read is flipped; the re-read heals.
    RegistryDelta delta;
    const uint64_t faults_before = backend.faults_injected();
    BufferPool pool(&*file, 2, ReplacementPolicy::kLru);
    backend.ScheduleReadFault(FaultKind::kBitFlip, 1);
    EXPECT_NE(pool.FetchPage(0, false), nullptr);
    EXPECT_EQ(pool.stats().checksum_failures, 1u);
    EXPECT_EQ(pool.stats().healed_rereads, 1u);
    EXPECT_EQ(delta.Counter("storage.pool.checksum_failures"), 1u);
    EXPECT_EQ(delta.Counter("storage.pool.checksum_healed"), 1u);
    EXPECT_EQ(delta.Counter("storage.faults.injected"),
              backend.faults_injected() - faults_before);
    EXPECT_EQ(backend.faults_injected() - faults_before, 1u);
  }
  {  // Persistent: flip the initial read AND the heal re-read.
    RegistryDelta delta;
    const uint64_t faults_before = backend.faults_injected();
    BufferPool pool(&*file, 2, ReplacementPolicy::kLru);
    backend.ScheduleReadFault(FaultKind::kBitFlip, 1);
    backend.ScheduleReadFault(FaultKind::kBitFlip, 2);
    EXPECT_EQ(pool.FetchPage(1, false), nullptr);
    EXPECT_EQ(pool.ConsumeError().code(), StatusCode::kCorruption);
    EXPECT_EQ(pool.stats().checksum_failures, 1u);
    EXPECT_EQ(pool.stats().healed_rereads, 0u);
    EXPECT_EQ(delta.Counter("storage.pool.checksum_failures"), 1u);
    EXPECT_EQ(delta.Counter("storage.pool.checksum_healed"), 0u);
    EXPECT_EQ(backend.faults_injected() - faults_before, 2u);
    EXPECT_EQ(delta.Counter("storage.faults.injected"), 2u);
  }
}

// (4) The engine's retry counter agrees between BatchStats and the
// registry when a scheduled read EIO forces a retry.
TEST(MetricsInvariantTest, EngineRetriesMatchBatchStats) {
  SPINE_SKIP_IF_OBS_DISABLED();
  Rng rng(31);
  const std::string s = RandomDna(rng, 4000);
  const std::string path = TempPath("mi_retry.idx");
  {
    storage::DiskSpine::Options options;
    options.pool_frames = 64;
    auto disk = storage::DiskSpine::Create(Alphabet::Dna(), path, options);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AppendString(s).ok());
    ASSERT_TRUE((*disk)->Checkpoint().ok());
  }
  FaultInjectingBackend backend;
  storage::DiskSpine::Options options;
  options.pool_frames = 16;
  options.backend = &backend;
  auto disk = storage::DiskSpine::Open(path, options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  backend.ScheduleReadFault(FaultKind::kReadError, 1);

  RegistryDelta delta;
  engine::QueryEngine engine({.threads = 2,
                              .cache_bytes = 0,
                              .retry_limit = 2,
                              .retry_backoff_us = 0});
  std::vector<Query> queries = {Query::FindAll(s.substr(50, 8)),
                                Query::Contains(s.substr(500, 6))};
  core::DiskSpineAdapter adapter(**disk);
  engine::BatchStats stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(adapter, queries, &stats);
  ASSERT_EQ(results.size(), queries.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(delta.Counter("engine.retries"), stats.retries);
  EXPECT_EQ(delta.Counter("engine.queries"), queries.size());
  EXPECT_EQ(delta.Counter("engine.failed"), 0u);
}

// (5) The Table 6 work counters accumulated by the registry equal the
// SearchStats the queries themselves report, summed independently, and
// the per-kind query counters equal the kind mix, over randomized
// patterns against a real index.
TEST(MetricsInvariantTest, MatcherCountersMatchSearchStats) {
  SPINE_SKIP_IF_OBS_DISABLED();
  Rng rng(907);
  const std::string s = RandomDna(rng, 8000);
  CompactSpineIndex index(Alphabet::Dna());
  ASSERT_TRUE(index.AppendString(s).ok());

  RegistryDelta delta;
  SearchStats expected;
  uint64_t per_kind[kQueryKindCount] = {};
  uint64_t approx_hits = 0;
  for (int i = 0; i < 200; ++i) {
    const uint32_t start = static_cast<uint32_t>(rng.Below(s.size() - 40));
    Query query;
    switch (i % 6) {
      case 0: query = Query::Contains(s.substr(start, 4 + rng.Below(10))); break;
      case 1: query = Query::FindAll(s.substr(start, 3 + rng.Below(8))); break;
      case 2: query = Query::MaximalMatches(RandomDna(rng, 32), 5); break;
      case 3: query = Query::MatchingStats(RandomDna(rng, 20)); break;
      case 4:
        query = Query::Mismatch(s.substr(start, 12 + rng.Below(8)),
                                rng.Below(3));
        break;
      default:
        query = Query::EditDistance(s.substr(start, 12 + rng.Below(8)),
                                    rng.Below(3));
        break;
    }
    QueryResult result = ExecuteQuery(index, query);
    ASSERT_TRUE(result.ok());
    expected.Add(result.stats);
    ++per_kind[static_cast<size_t>(query.kind)];
    if (query.kind == QueryKind::kMismatch ||
        query.kind == QueryKind::kEditDistance) {
      approx_hits += result.hits.size();
    }
  }

  EXPECT_EQ(delta.Counter("core.vertebra_steps"), expected.nodes_checked);
  EXPECT_EQ(delta.Counter("core.link_traversals"), expected.link_traversals);
  EXPECT_EQ(delta.Counter("core.chain_hops"), expected.chain_hops);
  EXPECT_EQ(delta.Counter("core.queries.contains"), per_kind[0]);
  EXPECT_EQ(delta.Counter("core.queries.findall"), per_kind[1]);
  EXPECT_EQ(delta.Counter("core.queries.match"), per_kind[2]);
  EXPECT_EQ(delta.Counter("core.queries.ms"), per_kind[3]);
  EXPECT_EQ(delta.Counter("core.queries.mismatch"), per_kind[4]);
  EXPECT_EQ(delta.Counter("core.queries.editdist"), per_kind[5]);
  // Every approximate query records exactly one routing decision, and
  // the verified-window counter is exactly the hits it returned.
  EXPECT_EQ(delta.Counter("approx.seeded") + delta.Counter("approx.scanned"),
            per_kind[4] + per_kind[5]);
  EXPECT_EQ(delta.Counter("approx.verified"), approx_hits);
  EXPECT_GE(delta.Counter("approx.candidates"),
            delta.Counter("approx.verified"));
  EXPECT_GT(expected.nodes_checked, 0u);
}

// (6) Matcher registry counters also increment on the *disk* backend,
// and agree with what the same queries report on the in-memory index
// (the Generic* algorithms are shared, so per-query SearchStats line up
// when both backends answer from the same structure).
TEST(MetricsInvariantTest, DiskBackendCountsSameCoreWork) {
  SPINE_SKIP_IF_OBS_DISABLED();
  Rng rng(55);
  const std::string s = RandomDna(rng, 3000);
  storage::DiskSpine::Options options;
  options.pool_frames = 256;
  auto disk = storage::DiskSpine::Create(Alphabet::Dna(),
                                         TempPath("mi_disk.idx"), options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_TRUE((*disk)->AppendString(s).ok());

  RegistryDelta delta;
  SearchStats expected;
  for (int i = 0; i < 50; ++i) {
    const uint32_t start = static_cast<uint32_t>(rng.Below(s.size() - 20));
    QueryResult result =
        ExecuteQuery(**disk, Query::FindAll(s.substr(start, 4 + i % 8)));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.Add(result.stats);
  }
  EXPECT_EQ(delta.Counter("core.vertebra_steps"), expected.nodes_checked);
  EXPECT_EQ(delta.Counter("core.link_traversals"), expected.link_traversals);
  EXPECT_EQ(delta.Counter("core.chain_hops"), expected.chain_hops);
  EXPECT_EQ(delta.Counter("core.queries.findall"), 50u);
}

}  // namespace
}  // namespace spine
