// Shared helpers for the test suite: temp paths, random-corpus
// generators and the brute-force search oracle. Individual test files
// keep only the helpers that are genuinely specific to them.

#ifndef SPINE_TESTS_TEST_UTIL_H_
#define SPINE_TESTS_TEST_UTIL_H_

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/metrics.h"
#include "seq/generator.h"

// Guards assertions that require live metric capture sites. In the
// SPINE_OBS_DISABLED build flavor the sites compile out and the
// registry legitimately stays flat, so such assertions skip.
#if defined(SPINE_OBS_DISABLED)
#define SPINE_SKIP_IF_OBS_DISABLED() \
  GTEST_SKIP() << "capture sites compiled out (SPINE_OBS=OFF)"
#else
#define SPINE_SKIP_IF_OBS_DISABLED() \
  do {                               \
  } while (false)
#endif

namespace spine::test {

// Counter deltas against a baseline snapshot of the default registry.
// Tests must measure deltas (after minus before) because the default
// registry is shared process-wide.
class RegistryDelta {
 public:
  RegistryDelta() : before_(obs::Registry::Default().Snapshot()) {}

  uint64_t Counter(const std::string& name) const {
    return obs::Registry::Default().Snapshot().counter(name) -
           before_.counter(name);
  }

 private:
  obs::MetricsSnapshot before_;
};

// Path under gtest's per-run temp directory. Callers pick distinct
// names per test; the directory is shared across the binary.
inline std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Creates (and truncates) `path` with `content`; fails the current
// test on I/O error.
inline void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  ASSERT_TRUE(out.good()) << "cannot open " << path;
  out << content;
  ASSERT_TRUE(out.good()) << "failed writing " << path;
}

// RAII temp directory: a unique subdirectory of gtest's temp dir,
// removed (recursively) on destruction.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& prefix = "spine_test") {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string tag = info == nullptr
                          ? "global"
                          : std::string(info->test_suite_name()) + "_" +
                                info->name();
    for (char& c : tag) {
      if (c == '/' || c == '\\') c = '_';
    }
    path_ = std::filesystem::path(::testing::TempDir()) / (prefix + "_" + tag);
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;  // best effort; never throw from a destructor
    std::filesystem::remove_all(path_, ec);
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

// Uniform random string over the first `sigma` letters of a mixed
// DNA/protein alphabet (sigma <= 19).
inline std::string RandomString(Rng& rng, uint32_t length, uint32_t sigma) {
  static const char* kLetters = "ACGTDEFHIKLMNPQRSWY";
  std::string s;
  s.reserve(length);
  for (uint32_t i = 0; i < length; ++i) {
    s.push_back(kLetters[rng.Below(sigma)]);
  }
  return s;
}

inline std::string RandomDna(Rng& rng, uint32_t length) {
  return RandomString(rng, length, 4);
}

inline std::string RandomProtein(Rng& rng, uint32_t length) {
  return RandomString(rng, length, 19);
}

// Synthetic DNA corpus from the shared sequence generator (repeats
// included), deterministic in (length, seed).
inline std::string TestCorpus(uint64_t length, uint64_t seed = 42) {
  seq::GeneratorOptions options;
  options.length = length;
  options.seed = seed;
  return seq::GenerateSequence(Alphabet::Dna(), options);
}

// Brute-force oracle: every start position of `pattern` in `text`
// (overlapping occurrences included), in increasing order.
inline std::vector<uint32_t> OracleFindAll(const std::string& text,
                                           const std::string& pattern) {
  std::vector<uint32_t> positions;
  if (pattern.empty() || pattern.size() > text.size()) return positions;
  for (size_t pos = text.find(pattern); pos != std::string::npos;
       pos = text.find(pattern, pos + 1)) {
    positions.push_back(static_cast<uint32_t>(pos));
  }
  return positions;
}

}  // namespace spine::test

#endif  // SPINE_TESTS_TEST_UTIL_H_
