// Tests for the compact multi-string index and its persistence.

#include "compact/generalized_compact.h"

#include <string>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/generalized_spine.h"
#include "naive/naive_index.h"

namespace spine {
namespace {

using Hit = GeneralizedCompactSpine::Hit;

TEST(GeneralizedCompactTest, BasicsAndBoundaries) {
  GeneralizedCompactSpine index(Alphabet::Dna());
  ASSERT_TRUE(index.AddString("ACGTACGT", "chrA").ok());
  ASSERT_TRUE(index.AddString("TTACGTT", "chrB").ok());
  EXPECT_EQ(index.string_count(), 2u);
  EXPECT_EQ(index.StringLength(0), 8u);
  EXPECT_EQ(index.StringLength(1), 7u);
  EXPECT_EQ(index.StringName(0), "chrA");

  EXPECT_EQ(index.FindAll("ACGT"), (std::vector<Hit>{{0, 0}, {0, 4}, {1, 2}}));
  EXPECT_TRUE(index.Contains("tta"));   // case folded via the DNA alphabet
  EXPECT_FALSE(index.Contains("GTTT"));  // would cross the boundary
  EXPECT_FALSE(index.Contains(std::string(1, '\n')));
  EXPECT_FALSE(index.AddString("AC\nGT").ok());
  EXPECT_FALSE(index.AddString("ACGX").ok());
}

TEST(GeneralizedCompactTest, AgreesWithReferenceGeneralizedIndex) {
  Rng rng(4242);
  const char* letters = "ACGT";
  for (int round = 0; round < 15; ++round) {
    GeneralizedCompactSpine compact(Alphabet::Dna());
    GeneralizedSpineIndex reference(Alphabet::Dna());
    uint32_t count = 2 + static_cast<uint32_t>(rng.Below(5));
    for (uint32_t k = 0; k < count; ++k) {
      std::string s;
      uint32_t len = 4 + static_cast<uint32_t>(rng.Below(80));
      for (uint32_t i = 0; i < len; ++i) s.push_back(letters[rng.Below(4)]);
      ASSERT_TRUE(compact.AddString(s).ok());
      ASSERT_TRUE(reference.AddString(s).ok());
    }
    for (int trial = 0; trial < 40; ++trial) {
      std::string pattern;
      for (uint32_t i = 0; i < 1 + rng.Below(6); ++i) {
        pattern.push_back(letters[rng.Below(4)]);
      }
      auto compact_hits = compact.FindAll(pattern);
      auto reference_hits = reference.FindAll(pattern);
      ASSERT_EQ(compact_hits.size(), reference_hits.size()) << pattern;
      for (size_t i = 0; i < compact_hits.size(); ++i) {
        ASSERT_EQ(compact_hits[i].string_id, reference_hits[i].string_id);
        ASSERT_EQ(compact_hits[i].offset, reference_hits[i].offset);
      }
    }
  }
}

TEST(GeneralizedCompactTest, MatchAgainstCollection) {
  GeneralizedCompactSpine index(Alphabet::Protein());
  ASSERT_TRUE(index.AddString("MKVLAWGHMKVLA", "p0").ok());
  ASSERT_TRUE(index.AddString("GGGMKVLAGG", "p1").ok());
  auto matches = index.MatchAgainst("HMKVLAH", 4);
  ASSERT_FALSE(matches.empty());
  bool found = false;
  for (const auto& match : matches) {
    if (match.length >= 5) {
      found = true;
      // "MKVLA" occurrences: p0 @ 0 and 8, p1 @ 3 (plus the H-extended
      // one at p0 @ 7 for the longer match).
      EXPECT_GE(match.hits.size(), 1u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(index.MatchAgainst("MKVLA", 0).empty());
}

TEST(GeneralizedCompactTest, SaveLoadRoundTrip) {
  GeneralizedCompactSpine index(Alphabet::Dna());
  ASSERT_TRUE(index.AddString("ACGTACGTCC", "alpha").ok());
  ASSERT_TRUE(index.AddString("GGACGTGG", "beta").ok());
  const std::string path = ::testing::TempDir() + "/generalized.spineg";
  Status save = index.Save(path);
  ASSERT_TRUE(save.ok()) << save.ToString();

  Result<GeneralizedCompactSpine> loaded = GeneralizedCompactSpine::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->string_count(), 2u);
  EXPECT_EQ(loaded->StringName(1), "beta");
  EXPECT_EQ(loaded->FindAll("ACGT"),
            (std::vector<Hit>{{0, 0}, {0, 4}, {1, 2}}));
  EXPECT_FALSE(loaded->Contains("CCGG"));
}

TEST(GeneralizedCompactTest, LoadRejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/generalized_bad.spineg";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "junk";
  }
  Result<GeneralizedCompactSpine> loaded = GeneralizedCompactSpine::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(GeneralizedCompactSpine::Load("/nonexistent.spineg").ok());
}

TEST(GeneralizedCompactTest, AsciiCollection) {
  GeneralizedCompactSpine index(Alphabet::Ascii());
  ASSERT_TRUE(index.AddString("the quick brown fox", "doc0").ok());
  ASSERT_TRUE(index.AddString("the lazy dog", "doc1").ok());
  EXPECT_EQ(index.FindAll("the "),
            (std::vector<Hit>{{0, 0}, {1, 0}}));
  EXPECT_TRUE(index.Contains("quick"));
  EXPECT_FALSE(index.Contains("fox the"));  // crosses the boundary
}

}  // namespace
}  // namespace spine
