// Shared N-backend agreement harness: builds one instance of every
// queryable backend over a corpus and checks that a query batch run
// through the engine produces byte-identical answers on all of them.
// Used by index_interface_test.cc (single run) and
// differential_kernel_test.cc (one run per forced comparison kernel).

#ifndef SPINE_TESTS_BACKEND_AGREEMENT_H_
#define SPINE_TESTS_BACKEND_AGREEMENT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "compact/compact_spine.h"
#include "compact/generalized_compact.h"
#include "compact/serializer.h"
#include "core/adapters.h"
#include "core/generalized_spine.h"
#include "core/index.h"
#include "core/query.h"
#include "core/spine_index.h"
#include "engine/query_engine.h"
#include "shard/sharded_index.h"
#include "storage/disk_spine.h"
#include "storage/disk_suffix_tree.h"
#include "suffix_tree/suffix_tree.h"
#include "test_util.h"

namespace spine::test {

// A mixed batch over all four query kinds, sliced from the corpus plus
// perturbed misses.
inline std::vector<Query> MixedQueries(const std::string& corpus,
                                       size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t len = 4 + (i * 5) % 20;
    const size_t offset = (i * 137) % (corpus.size() - 128);
    std::string pattern = corpus.substr(offset, len);
    switch (i % 5) {
      case 0:
        queries.push_back(Query::FindAll(pattern));
        break;
      case 1:
        queries.push_back(Query::Contains(pattern));
        break;
      case 2:
        pattern[len / 2] = pattern[len / 2] == 'A' ? 'C' : 'A';
        queries.push_back(Query::FindAll(pattern));
        break;
      case 3:
        queries.push_back(Query::MaximalMatches(corpus.substr(offset, 64), 8));
        break;
      default:
        queries.push_back(Query::MatchingStats(corpus.substr(offset, 48)));
        break;
    }
  }
  return queries;
}

// Every queryable backend built over one corpus. Slot 0 of indexes()
// is the brute-force NaiveTextAdapter oracle; the rest are the real
// implementations (reference spine, compact, both generalized forms,
// suffix tree, both paged backends, shard family). Check ok() before
// using — construction reports backend build failures there rather
// than asserting from the constructor.
class BackendFleet {
 public:
  BackendFleet(const Alphabet& alphabet, const std::string& corpus)
      : dir_("backend_fleet"),
        reference_(alphabet),
        compact_(alphabet),
        generalized_(alphabet),
        generalized_compact_(alphabet),
        tree_(alphabet) {
    ok_ = Build(alphabet, corpus);
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  const std::vector<const core::Index*>& indexes() const { return indexes_; }

 private:
  bool Build(const Alphabet& alphabet, const std::string& corpus) {
    for (Status status : {reference_.AppendString(corpus),
                          compact_.AppendString(corpus),
                          generalized_.AddString(corpus),
                          generalized_compact_.AddString(corpus, "seq0"),
                          tree_.AppendString(corpus)}) {
      if (!status.ok()) {
        error_ = status.ToString();
        return false;
      }
    }
    auto disk =
        storage::DiskSpine::Create(alphabet, dir_.File("fleet.disk"), {});
    if (!disk.ok() || !(*disk)->AppendString(corpus).ok()) {
      error_ = disk.status().ToString();
      return false;
    }
    auto disk_tree =
        storage::DiskSuffixTree::Create(alphabet, dir_.File("fleet.st"), {});
    if (!disk_tree.ok() || !(*disk_tree)->AppendString(corpus).ok()) {
      error_ = disk_tree.status().ToString();
      return false;
    }
    auto family = shard::ShardedIndex::Build(alphabet, corpus,
                                             {.shards = 3, .max_pattern = 128});
    if (!family.ok()) {
      error_ = family.status().ToString();
      return false;
    }
    owned_.push_back(
        std::make_unique<core::NaiveTextAdapter>(alphabet, corpus));
    owned_.push_back(std::make_unique<core::SpineIndexAdapter>(reference_));
    owned_.push_back(std::make_unique<core::CompactSpineAdapter>(compact_));
    owned_.push_back(
        std::make_unique<core::GeneralizedSpineAdapter>(generalized_));
    owned_.push_back(
        std::make_unique<core::GeneralizedCompactAdapter>(generalized_compact_));
    owned_.push_back(std::make_unique<core::SuffixTreeAdapter>(tree_));
    owned_.push_back(
        std::make_unique<core::DiskSpineAdapter>(std::move(*disk)));
    owned_.push_back(
        std::make_unique<core::DiskSuffixTreeAdapter>(std::move(*disk_tree)));
    owned_.push_back(std::move(*family));
    indexes_.reserve(owned_.size());
    for (const auto& index : owned_) indexes_.push_back(index.get());
    return true;
  }

  ScopedTempDir dir_;
  SpineIndex reference_;
  CompactSpineIndex compact_;
  GeneralizedSpineIndex generalized_;
  GeneralizedCompactSpine generalized_compact_;
  SuffixTree tree_;
  std::vector<std::unique_ptr<core::Index>> owned_;
  std::vector<const core::Index*> indexes_;
  bool ok_ = false;
  std::string error_;
};

// --- Differential open-path harness (PR 8) -------------------------------
//
// The mmap open path must be *observationally identical* to the heap
// path: same answers, same error verdicts, and same work counters (the
// walks execute the same steps whether the tables live in private
// memory or in a mapping). These helpers save one artifact per
// persistent backend kind, reopen each through the registry under any
// open spec, and compare result streams field by field.

// One saved artifact the registry can reopen, tagged with its backend
// name for failure messages.
struct PersistentArtifact {
  std::string path;
  std::string name;
};

// Builds and saves every persistent artifact kind over `corpus` into
// `dir`: compact image, generalized compact image, disk spine page
// file, disk suffix tree page file, and a 3-shard family manifest.
// Returns false (with `error` set) on any build/save failure.
inline bool SavePersistentArtifacts(const Alphabet& alphabet,
                                    const std::string& corpus,
                                    const ScopedTempDir& dir,
                                    std::vector<PersistentArtifact>* artifacts,
                                    std::string* error) {
  artifacts->clear();
  {
    CompactSpineIndex compact(alphabet);
    Status status = compact.AppendString(corpus);
    if (status.ok()) status = SaveCompactSpine(compact, dir.File("diff.spine"));
    if (!status.ok()) {
      *error = "compact: " + status.ToString();
      return false;
    }
    artifacts->push_back({dir.File("diff.spine"), "compact"});
  }
  {
    GeneralizedCompactSpine generalized(alphabet);
    Status status = generalized.AddString(corpus, "seq0");
    if (status.ok()) status = generalized.Save(dir.File("diff.spineg"));
    if (!status.ok()) {
      *error = "generalized-compact: " + status.ToString();
      return false;
    }
    artifacts->push_back({dir.File("diff.spineg"), "generalized-compact"});
  }
  {
    auto disk = storage::DiskSpine::Create(alphabet, dir.File("diff.disk"), {});
    Status status = disk.status();
    if (status.ok()) status = (*disk)->AppendString(corpus);
    if (status.ok()) status = (*disk)->Checkpoint();
    if (!status.ok()) {
      *error = "disk: " + status.ToString();
      return false;
    }
    artifacts->push_back({dir.File("diff.disk"), "disk"});
  }
  {
    auto tree =
        storage::DiskSuffixTree::Create(alphabet, dir.File("diff.st"), {});
    Status status = tree.status();
    if (status.ok()) status = (*tree)->AppendString(corpus);
    if (status.ok()) status = (*tree)->Checkpoint();
    if (!status.ok()) {
      *error = "disk-st: " + status.ToString();
      return false;
    }
    artifacts->push_back({dir.File("diff.st"), "disk-st"});
  }
  {
    auto family = shard::ShardedIndex::Build(alphabet, corpus,
                                             {.shards = 3, .max_pattern = 128});
    Status status = family.status();
    if (status.ok()) status = (*family)->Save(dir.File("diff.spinefam"));
    if (!status.ok()) {
      *error = "sharded: " + status.ToString();
      return false;
    }
    artifacts->push_back({dir.File("diff.spinefam"), "sharded"});
  }
  return true;
}

// Runs `queries` through a fresh engine (no cache, so every answer is
// executed, never served from a hit) on one index.
inline std::vector<QueryResult> RunBatch(
    const core::Index& index, const std::vector<Query>& queries) {
  engine::QueryEngine engine({.threads = 2, .cache_bytes = 0});
  return engine.ExecuteBatch(index, queries);
}

// Checks two result streams identical *including* the SearchStats work
// counters — the property that makes the two open paths substitutable
// byte for byte, not merely answer-equivalent.
inline void ExpectIdenticalResults(const std::vector<QueryResult>& expected,
                                   const std::vector<QueryResult>& actual,
                                   const std::vector<Query>& queries,
                                   const std::string& tag) {
  ASSERT_EQ(expected.size(), actual.size()) << tag;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(actual[i].SameAnswer(expected[i]))
        << tag << ": answers diverge on query " << i << " (kind "
        << QueryKindName(queries[i].kind) << ", pattern \""
        << queries[i].pattern << "\")";
    EXPECT_EQ(actual[i].stats.nodes_checked, expected[i].stats.nodes_checked)
        << tag << ": nodes_checked diverges on query " << i;
    EXPECT_EQ(actual[i].stats.link_traversals,
              expected[i].stats.link_traversals)
        << tag << ": link_traversals diverges on query " << i;
    EXPECT_EQ(actual[i].stats.chain_hops, expected[i].stats.chain_hops)
        << tag << ": chain_hops diverges on query " << i;
  }
}

// Runs the batch through the engine on every index and checks each
// backend's answers byte-identical to slot 0 (the oracle) for every
// kind it supports. `tag` annotates failures (e.g. the forced kernel).
inline void ExpectAllBackendsAgree(
    const std::vector<const core::Index*>& indexes,
    const std::vector<Query>& queries, const std::string& tag) {
  engine::QueryEngine engine({.threads = 4, .cache_bytes = 0});
  std::vector<engine::BatchStats> stats;
  std::vector<std::vector<QueryResult>> results =
      engine.ExecuteBatch(indexes, queries, &stats);
  ASSERT_EQ(results.size(), indexes.size()) << tag;
  for (size_t j = 1; j < indexes.size(); ++j) {
    const std::string_view backend = core::IndexKindName(indexes[j]->kind());
    EXPECT_EQ(stats[j].failed, 0u) << tag << ": " << backend;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!indexes[j]->capabilities().Supports(queries[i].kind)) continue;
      EXPECT_TRUE(results[j][i].SameAnswer(results[0][i]))
          << tag << ": " << backend << " disagrees with the oracle on query "
          << i << " (pattern \"" << queries[i].pattern << "\")";
    }
  }
}

}  // namespace spine::test

#endif  // SPINE_TESTS_BACKEND_AGREEMENT_H_
