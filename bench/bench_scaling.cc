// Construction-scaling bench: the paper's construction-time claims
// (Section 6.1: "less than two seconds construction time per Mbp", and
// Section 5.2: protein construction "scaled linearly with the string
// lengths"). Doubling the input should leave secs/Mchar flat for SPINE;
// the suffix tree is shown for reference.

#include <cstdio>
#include <string>

#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "seq/datasets.h"
#include "seq/generator.h"
#include "suffix_array/suffix_array.h"
#include "suffix_tree/suffix_tree.h"

namespace spine::bench {
namespace {

void Run() {
  double scale = seq::BenchScaleFromEnv(1.0);
  PrintBanner("Scaling", "construction time vs string length", scale);

  BenchReport report("scaling", scale);
  TablePrinter table({"Length", "SPINE secs", "SPINE s/Mchar", "ST secs",
                      "ST s/Mchar", "SA secs", "SA s/Mchar"});
  for (uint64_t base : {500'000ull, 1'000'000ull, 2'000'000ull,
                        4'000'000ull}) {
    uint64_t length = static_cast<uint64_t>(base * scale);
    seq::GeneratorOptions options;
    options.length = length;
    options.seed = 77;
    options.repeat_fraction = 0.05;
    options.mean_repeat_len = 500;
    std::string s = seq::GenerateSequence(Alphabet::Dna(), options);

    WallTimer spine_timer;
    CompactSpineIndex index(Alphabet::Dna());
    SPINE_CHECK(index.AppendString(s).ok());
    double spine_secs = spine_timer.ElapsedSeconds();

    WallTimer st_timer;
    SuffixTree tree(Alphabet::Dna());
    SPINE_CHECK(tree.AppendString(s).ok());
    double st_secs = st_timer.ElapsedSeconds();

    // Related work (Section 7): suffix arrays give up linear-time
    // construction — the s/Mchar column should visibly grow.
    WallTimer sa_timer;
    Result<SuffixArray> sa = SuffixArray::Build(Alphabet::Dna(), s);
    SPINE_CHECK(sa.ok());
    double sa_secs = sa_timer.ElapsedSeconds();

    double mchars = static_cast<double>(length) / 1e6;
    table.AddRow({FormatMega(length), FormatDouble(spine_secs, 3),
                  FormatDouble(spine_secs / mchars, 3),
                  FormatDouble(st_secs, 3), FormatDouble(st_secs / mchars, 3),
                  FormatDouble(sa_secs, 3),
                  FormatDouble(sa_secs / mchars, 3)});
    const std::string key = std::to_string(base);
    report.AddMetric("spine_s_per_mchar_" + key, spine_secs / mchars);
    report.AddMetric("st_s_per_mchar_" + key, st_secs / mchars);
    report.AddMetric("sa_s_per_mchar_" + key, sa_secs / mchars);
  }
  table.Print();
  SPINE_CHECK(report.Write().ok());
  std::printf("\npaper: SPINE/ST construction is online and linear — their "
              "s/Mchar columns stay\nflat as lengths double (modulo cache "
              "effects), while the suffix array's\nsupra-linear construction "
              "(Section 7) grows visibly.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
