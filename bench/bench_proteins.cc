// Reproduces Section 5.2 ("SPINE Implementation for Proteins"): over
// the 20-letter amino-acid alphabet the paper observed (a) numeric
// labels even smaller than for DNA, (b) a steep fan-out decay with
// < 30% of nodes carrying any rib, and (c) construction time scaling
// linearly with proteome length.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "seq/datasets.h"

namespace spine::bench {
namespace {

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Section 5.2", "protein-alphabet behaviour", scale);

  TablePrinter table({"Proteome", "Length", "secs", "secs/Mchar", "Max label",
                      "1", "2", "3", "4", ">4", "with edges"});
  for (const seq::DatasetSpec& spec : seq::AllDatasets()) {
    if (!spec.is_protein) continue;
    std::string s = seq::MakeDataset(spec, scale);
    CompactSpineIndex index(Alphabet::Protein());
    WallTimer timer;
    Status status = index.AppendString(s);
    SPINE_CHECK_MSG(status.ok(), status.ToString().c_str());
    double secs = timer.ElapsedSeconds();

    auto counts = index.FanoutCounts();
    double n = static_cast<double>(index.size() + 1);
    double with_edges = 0;
    std::vector<std::string> row = {
        spec.name, FormatMega(s.size()), FormatDouble(secs),
        FormatDouble(secs / (static_cast<double>(s.size()) / 1e6)),
        FormatCount(std::max({index.max_lel(), index.max_pt(),
                              index.max_prt()}))};
    for (int k = 0; k < 5; ++k) {
      double fraction = static_cast<double>(counts[k]) / n;
      with_edges += fraction;
      row.push_back(FormatPercent(fraction));
    }
    row.push_back(FormatPercent(with_edges));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\npaper: protein label maxima are smaller than DNA's; fan-out "
              "decays steeply;\nfewer than 30%% of nodes carry any rib; "
              "construction scales linearly (flat\nsecs/Mchar column); "
              "character labels cost 5 bits instead of 2.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
