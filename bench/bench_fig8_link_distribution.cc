// Reproduces Figure 8 ("Link Distribution over the Backbone"): the
// histogram of link destinations. The paper's observation: most links
// point to the top of the backbone and the distribution decays
// monotonically — the basis for the "pin the top of the LT" buffering
// strategy (see bench_ablation_buffering).

#include <cstdio>
#include <string>

#include "bench_util/table.h"
#include "common/check.h"
#include "compact/compact_spine.h"
#include "core/spine_stats.h"
#include "seq/datasets.h"

namespace spine::bench {
namespace {

constexpr uint32_t kBins = 10;

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Figure 8", "link-destination distribution over the backbone",
              scale);

  std::vector<std::string> headers = {"Genome"};
  for (uint32_t b = 0; b < kBins; ++b) {
    headers.push_back(std::to_string(b * 10) + "-" +
                      std::to_string((b + 1) * 10) + "%");
  }
  TablePrinter table(headers);

  for (const char* name : {"ECO", "CEL", "HC21"}) {
    std::string s = seq::MakeDataset(seq::DatasetByName(name), scale);
    CompactSpineIndex index(Alphabet::Dna());
    SPINE_CHECK(index.AppendString(s).ok());
    std::vector<double> histogram =
        ComputeLinkDestinationHistogramT(index, kBins);
    std::vector<std::string> row = {name};
    for (double pct : histogram) row.push_back(FormatDouble(pct, 1) + "%");
    table.AddRow(row);

    // ASCII rendition of the figure's series.
    std::printf("%s:\n", name);
    for (uint32_t b = 0; b < kBins; ++b) {
      int bars = static_cast<int>(histogram[b]);
      std::printf("  %3u-%3u%% |", b * 10, (b + 1) * 10);
      for (int i = 0; i < bars; ++i) std::printf("#");
      std::printf(" %.1f%%\n", histogram[b]);
    }
  }
  std::printf("\n");
  table.Print();
  std::printf("\npaper: the first bins hold the largest share and the "
              "percentages decrease\nmonotonically down the backbone.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
