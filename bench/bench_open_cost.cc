// Open-path cost: how much time and resident memory it takes to bring
// a saved compact artifact into service, heap copy vs zero-copy mmap,
// across growing artifact sizes. The numbers that matter:
//
//   - heap open is O(artifact): read + copy + checksum, and the copy
//     stays resident as anonymous (unevictable) memory;
//   - mmap open pays only the checksum pass (file-backed, evictable
//     pages), and mmap-noverify is ~constant — a map + header parse —
//     regardless of artifact size;
//   - first-query latency after open shows the lazy-fault cost the
//     mmap path defers.
//
// Writes BENCH_open_cost.json.
//
//   $ ./bench/bench_open_cost

#include <malloc.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "compact/serializer.h"
#include "core/index.h"
#include "core/query.h"
#include "core/registry.h"
#include "seq/datasets.h"
#include "seq/generator.h"

namespace spine::bench {
namespace {

// Resident set size right now, in KiB, from /proc/self/statm. We use
// the current RSS (not getrusage's peak) so a released heap copy stops
// counting once freed + trimmed; deltas around an open are what the
// table reports.
uint64_t ResidentKib() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long total = 0, resident = 0;
  const int fields = std::fscanf(statm, "%llu %llu", &total, &resident);
  std::fclose(statm);
  if (fields != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident * static_cast<uint64_t>(page > 0 ? page : 4096) / 1024;
}

struct OpenCost {
  double open_ms = 0;
  double first_query_ms = 0;
  uint64_t rss_delta_kib = 0;  // resident growth across open+first query
};

OpenCost MeasureOpen(const std::string& path, const core::OpenOptions& options,
                     const std::string& probe) {
  OpenCost cost;
  ::malloc_trim(0);
  const uint64_t rss_before = ResidentKib();
  WallTimer timer;
  auto index = core::BackendRegistry::Default().Open(path, options);
  cost.open_ms = timer.ElapsedMillis();
  SPINE_CHECK(index.ok());
  timer.Reset();
  const QueryResult result = (*index)->Execute(Query::FindAll(probe));
  cost.first_query_ms = timer.ElapsedMillis();
  SPINE_CHECK(result.ok());
  const uint64_t rss_after = ResidentKib();
  cost.rss_delta_kib = rss_after > rss_before ? rss_after - rss_before : 0;
  return cost;
}

void Run() {
  const double scale = seq::BenchScaleFromEnv();
  PrintBanner("OpenCost", "artifact open time and RSS, heap vs mmap", scale);

  const std::vector<uint64_t> base_sizes = {1'000'000, 4'000'000, 16'000'000};
  const char* specs[] = {"heap", "mmap", "mmap-noverify"};

  BenchReport report("open_cost", scale);
  report.AddMetric("sizes", static_cast<uint64_t>(base_sizes.size()));

  TablePrinter table({"corpus chars", "artifact KiB", "open path", "open ms",
                      "1st query ms", "rss delta KiB"});
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("spine_open_cost_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);

  for (size_t si = 0; si < base_sizes.size(); ++si) {
    seq::GeneratorOptions gen;
    gen.length = static_cast<uint64_t>(base_sizes[si] * scale);
    gen.seed = 29 + si;
    const std::string corpus = seq::GenerateSequence(Alphabet::Dna(), gen);
    const std::string probe = corpus.substr(corpus.size() / 3, 12);

    const std::string path = dir + "/open_cost_" + std::to_string(si) +
                             ".spine";
    {
      CompactSpineIndex built(Alphabet::Dna());
      SPINE_CHECK(built.AppendString(corpus).ok());
      SPINE_CHECK(SaveCompactSpine(built, path).ok());
    }
    const uint64_t artifact_kib = std::filesystem::file_size(path) / 1024;

    for (const char* spec : specs) {
      Result<core::OpenOptions> options = core::ParseOpenSpec(spec);
      SPINE_CHECK(options.ok());
      const OpenCost cost = MeasureOpen(path, *options, probe);
      table.AddRow({FormatCount(corpus.size()), FormatCount(artifact_kib),
                    spec, FormatDouble(cost.open_ms, 3),
                    FormatDouble(cost.first_query_ms, 3),
                    FormatCount(cost.rss_delta_kib)});
      const std::string key =
          "s" + std::to_string(si) + "_" + std::string(spec);
      report.AddMetric(key + "_artifact_kib", artifact_kib);
      report.AddMetric(key + "_open_ms", cost.open_ms);
      report.AddMetric(key + "_first_query_ms", cost.first_query_ms);
      report.AddMetric(key + "_rss_delta_kib", cost.rss_delta_kib);
    }
  }
  table.Print();

  std::printf("\ntarget: mmap-noverify open stays ~flat as the artifact "
              "grows; heap RSS delta tracks artifact size.\n");
  std::filesystem::remove_all(dir);
  SPINE_CHECK(report.Write().ok());
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
