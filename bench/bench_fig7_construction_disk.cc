// Reproduces Figure 7 ("Index Construction Times, On Disk"): building
// disk-resident indexes through a fixed-budget buffer pool. The paper
// found SPINE builds in about half the ST time — ~30% from smaller
// nodes and a further ~20% from better page locality (construction
// walks links that point mostly at the *top* of the backbone, Fig. 8).
//
// Absolute times on a 2026 machine mean little next to a 2003 IDE disk
// with O_SYNC writes, so we report page-fault counts and a modeled time
// under a fixed early-2000s disk cost model alongside wall time.

#include <cstdio>
#include <string>

#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "seq/datasets.h"
#include "storage/disk_model.h"
#include "storage/disk_spine.h"
#include "storage/disk_suffix_tree.h"

namespace spine::bench {
namespace {

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Figure 7", "on-disk construction, ST vs SPINE", scale);

  const uint32_t pool_frames = 2048;  // 8 MiB pool: indexes spill to disk
  storage::DiskCostModel model;
  std::printf("buffer pool: %u frames (%s); disk model: %.1f ms/page I/O\n\n",
              pool_frames, FormatBytes(pool_frames * 4096ull).c_str(),
              model.PageIoMs());

  TablePrinter table({"Genome", "Length", "ST misses", "SPINE misses",
                      "ST modeled h", "SPINE modeled h", "speedup",
                      "ST wall s", "SPINE wall s"});
  for (const char* name : {"ECO", "CEL", "HC21"}) {
    std::string s = seq::MakeDataset(seq::DatasetByName(name), scale);
    std::string dir = ::getenv("TMPDIR") ? ::getenv("TMPDIR") : "/tmp";

    storage::DiskSuffixTree::Options st_options;
    st_options.pool_frames = pool_frames;
    auto tree = storage::DiskSuffixTree::Create(
        Alphabet::Dna(), dir + "/fig7_st_" + name + ".idx", st_options);
    SPINE_CHECK(tree.ok());
    WallTimer st_timer;
    SPINE_CHECK((*tree)->AppendString(s).ok());
    SPINE_CHECK((*tree)->Flush().ok());
    double st_wall = st_timer.ElapsedSeconds();
    storage::IoStats st_io = (*tree)->io_stats();

    storage::DiskSpine::Options sp_options;
    sp_options.pool_frames = pool_frames;
    auto index = storage::DiskSpine::Create(
        Alphabet::Dna(), dir + "/fig7_spine_" + name + ".idx", sp_options);
    SPINE_CHECK(index.ok());
    WallTimer spine_timer;
    SPINE_CHECK((*index)->AppendString(s).ok());
    SPINE_CHECK((*index)->Flush().ok());
    double spine_wall = spine_timer.ElapsedSeconds();
    storage::IoStats spine_io = (*index)->io_stats();

    double st_hours = model.ModeledSeconds(st_io) / 3600.0;
    double spine_hours = model.ModeledSeconds(spine_io) / 3600.0;
    table.AddRow({name, FormatMega(s.size()), FormatCount(st_io.misses),
                  FormatCount(spine_io.misses), FormatDouble(st_hours, 3),
                  FormatDouble(spine_hours, 3),
                  FormatDouble(st_hours / spine_hours, 2) + "x",
                  FormatDouble(st_wall), FormatDouble(spine_wall)});
  }
  table.Print();
  std::printf("\npaper (full scale, hours with O_SYNC): SPINE builds in "
              "about half the ST time\n(e.g. HC21: ~21 h ST vs ~10 h SPINE). "
              "The expected shape here: SPINE's page-miss\ncount and modeled "
              "time well below half of ST's.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
