// Reproduces Table 2 ("Index Node Content"): the worst-case space of a
// naive one-struct-per-node SPINE implementation, contrasted with the
// optimized layout of Section 5 actually used by CompactSpineIndex.

#include <cstdio>

#include "bench_util/table.h"
#include "seq/datasets.h"

namespace spine::bench {
namespace {

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Table 2", "per-node content of a naive SPINE node (DNA)",
              scale);

  // The paper's naive node: 1 CL (2 bits), 1 vertebra dest, 1 link
  // (dest + LEL), up to 3 ribs (dest + PT each), 1 extrib
  // (dest + PT + PRT), all numeric fields at 4 bytes.
  TablePrinter naive({"Field Name", "Space (Bytes)", "Count",
                      "Total (Bytes)"});
  naive.AddRow({"CharacterLabel", "0.25", "1", "0.25"});
  naive.AddRow({"VertebraDest", "4", "1", "4"});
  naive.AddRow({"Link Dest", "4", "1", "4"});
  naive.AddRow({"Link LEL", "4", "1", "4"});
  naive.AddRow({"Rib Dest", "4", "3", "12"});
  naive.AddRow({"Rib PT", "4", "3", "12"});
  naive.AddRow({"ExtRib Dest", "4", "1", "4"});
  naive.AddRow({"ExtRib PT", "4", "1", "4"});
  naive.AddRow({"ExtRib PRT", "4", "1", "4"});
  naive.Print();
  std::printf("naive worst-case node size: 48.25 bytes "
              "(paper Table 2: 48.25 bytes)\n\n");

  std::printf("Optimized layout (Section 5, as implemented in "
              "compact/compact_spine.h):\n");
  TablePrinter optimized({"Component", "Bytes", "Allocated for"});
  optimized.AddRow({"CL (packed)", "0.25/char", "every character"});
  optimized.AddRow({"LT entry (LEL 2B + LD/PTR 4B, flag bits stolen)",
                    "6/char", "every node"});
  optimized.AddRow({"RT1 entry (LD + 1 rib slot)", "11", "fan-out 1 nodes"});
  optimized.AddRow({"RT2 entry (LD + 2 rib slots)", "18", "fan-out 2 nodes"});
  optimized.AddRow({"RT3 entry (LD + 3 rib slots)", "25", "fan-out 3 nodes"});
  optimized.AddRow({"RT4 entry (LD + 4 rib slots)", "32", "fan-out 4 nodes"});
  optimized.AddRow({"Extrib entry (+4B parent-rib dest, see DESIGN.md)",
                    "17", "nodes with an extrib"});
  optimized.AddRow({"Overflow entry", "4", "labels > 65535 (rare)"});
  optimized.Print();
  std::printf("\nexpected average: < 12 bytes per indexed character for "
              "genomic rib densities\n(measured values: run "
              "bench_space_per_char)\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
