// Space per indexed character across index structures (paper Sections
// 5.1 and 7): the optimized SPINE layout targets < 12 bytes/char; the
// paper quotes standard suffix trees at ~17 B/char (Kurtz 12.5,
// lazy suffix trees 8.5), suffix arrays at ~6 B/char, DAWGs at ~34 and
// CDAWGs at ~22. We measure every structure implemented here and print
// the paper's quoted numbers as reference.

#include <cstdio>
#include <string>

#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "compact/compact_spine.h"
#include "core/spine_index.h"
#include "seq/datasets.h"
#include "dawg/compact_dawg.h"
#include "dawg/suffix_automaton.h"
#include "suffix_array/suffix_array.h"
#include "suffix_tree/packed_suffix_tree.h"
#include "suffix_tree/suffix_tree.h"

namespace spine::bench {
namespace {

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Space", "bytes per indexed character (Sections 5.1, 7)",
              scale);

  BenchReport report("space_per_char", scale);
  TablePrinter table({"Genome", "Length", "SPINE compact", "SPINE (LT/RT/ET)",
                      "ST packed", "ST textbook", "Suffix array", "DAWG", "CDAWG",
                      "SPINE reference impl"});
  for (const char* name : {"ECO", "CEL", "HC21"}) {
    std::string s = seq::MakeDataset(seq::DatasetByName(name), scale);
    uint64_t n = s.size();

    CompactSpineIndex compact(Alphabet::Dna());
    SPINE_CHECK(compact.AppendString(s).ok());
    auto breakdown = compact.LogicalBytes();

    SuffixTree tree(Alphabet::Dna());
    SPINE_CHECK(tree.AppendString(s).ok());
    PackedSuffixTree packed_tree(Alphabet::Dna());
    SPINE_CHECK(packed_tree.AppendString(s).ok());

    Result<SuffixArray> sa = SuffixArray::Build(Alphabet::Dna(), s);
    SPINE_CHECK(sa.ok());

    SuffixAutomaton dawg(Alphabet::Dna());
    SPINE_CHECK(dawg.AppendString(s).ok());
    Result<CompactDawg> cdawg = CompactDawg::Build(Alphabet::Dna(), s);
    SPINE_CHECK(cdawg.ok());

    SpineIndex reference(Alphabet::Dna());
    SPINE_CHECK(reference.AppendString(s).ok());

    uint64_t rt_total = breakdown.rib_tables[0] + breakdown.rib_tables[1] +
                        breakdown.rib_tables[2] + breakdown.rib_tables[3];
    char detail[128];
    std::snprintf(detail, sizeof(detail), "LT %.1f RT %.1f ET %.1f",
                  static_cast<double>(breakdown.link_table) / n,
                  static_cast<double>(rt_total) / n,
                  static_cast<double>(breakdown.extrib_table) / n);
    table.AddRow(
        {name, FormatMega(n),
         FormatDouble(breakdown.BytesPerChar(n)) + " B/ch", detail,
         FormatDouble(static_cast<double>(packed_tree.MemoryBytes()) / n) +
             " B/ch",
         FormatDouble(static_cast<double>(tree.MemoryBytes()) / n) + " B/ch",
         FormatDouble(static_cast<double>(sa->MemoryBytes()) / n) + " B/ch",
         FormatDouble(static_cast<double>(dawg.MemoryBytes()) / n) + " B/ch",
         FormatDouble(static_cast<double>(cdawg->MemoryBytes()) / n) +
             " B/ch",
         FormatDouble(static_cast<double>(reference.MemoryBytes()) / n) +
             " B/ch"});
    const std::string key(name);
    report.AddMetric("spine_bpc_" + key, breakdown.BytesPerChar(n));
    report.AddMetric("st_packed_bpc_" + key,
                     static_cast<double>(packed_tree.MemoryBytes()) / n);
    report.AddMetric("sa_bpc_" + key,
                     static_cast<double>(sa->MemoryBytes()) / n);
    report.AddMetric("cdawg_bpc_" + key,
                     static_cast<double>(cdawg->MemoryBytes()) / n);
  }
  table.Print();
  SPINE_CHECK(report.Write().ok());
  std::printf(
      "\npaper reference points (DNA): SPINE < 12 B/char; standard suffix "
      "trees ~17\n(Kurtz 12.5, lazy 8.5); suffix arrays ~6; DAWG ~34; "
      "CDAWG ~22.\nThe packed (head, depth) tree lands in the Kurtz/MUMmer "
      "~17 B/char class the paper\nquotes; the textbook layout shows what a "
      "naive ST costs. Measured ordering:\nSA < SPINE < CDAWG < ST-packed < "
      "DAWG < ST-textbook; our CSR CDAWG is leaner\nthan the >22 B/char "
      "implementation the paper quotes. The 'reference impl' column is the\nclarity-first "
      "hash-map SpineIndex, not a space-optimized layout.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
