// Dynamic index lifecycle costs: what a mutable SPINE family pays for
// each phase of the memtable -> frozen shard -> compacted shard path,
// and what queries feel while a compaction runs next to them. The
// numbers that matter:
//
//   - insert throughput into the live memtable (docs/s and chars/s) —
//     every insert republishes the generation pointer, so this bounds
//     the sustained write rate;
//   - flush cost: freezing the memtable into a compact shard image and
//     committing the manifest, as a function of memtable size;
//   - compaction pause: merging K frozen shards into one (the
//     exclusive-writer section; readers keep serving off the pinned
//     generation throughout);
//   - query latency while a compaction runs concurrently, against the
//     quiescent baseline — the paper's promise is that readers never
//     block on the merge.
//
// Writes BENCH_lifecycle.json.
//
//   $ ./bench/bench_lifecycle

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "core/query.h"
#include "seq/datasets.h"
#include "seq/generator.h"
#include "shard/dynamic_family.h"

namespace spine::bench {
namespace {

using spine::shard::DynamicFamily;

std::string BenchDir() {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("spine_bench_lifecycle_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

// Fresh empty family (foreground-only: no background thread, so the
// measured sections are exactly the operations we time).
std::unique_ptr<DynamicFamily> FreshFamily(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  auto family =
      DynamicFamily::Create(path, Alphabet::Dna(), DynamicFamily::Options{});
  SPINE_CHECK(family.ok());
  return std::move(*family);
}

// Cuts `corpus` into `count` documents of roughly equal length.
std::vector<std::string> MakeDocs(const std::string& corpus, size_t count) {
  std::vector<std::string> docs;
  const size_t stride = std::max<size_t>(1, corpus.size() / count);
  for (size_t i = 0; i < count && i * stride < corpus.size(); ++i) {
    docs.push_back(corpus.substr(i * stride, stride));
  }
  return docs;
}

double Quantile(std::vector<double>& values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t at = std::min(values.size() - 1,
                             static_cast<size_t>(q * values.size()));
  return values[at];
}

void Run() {
  const double scale = seq::BenchScaleFromEnv();
  PrintBanner("Lifecycle", "memtable insert, flush, compaction costs", scale);

  BenchReport report("lifecycle", scale);
  const std::string dir = BenchDir();

  seq::GeneratorOptions gen;
  gen.length = static_cast<uint64_t>(2'000'000 * scale);
  gen.seed = 97;
  const std::string corpus = seq::GenerateSequence(Alphabet::Dna(), gen);
  const std::string probe = corpus.substr(corpus.size() / 3, 12);

  // --- 1. insert throughput into the memtable ------------------------------
  {
    TablePrinter table({"docs", "doc chars", "total ms", "docs/s", "Mchars/s"});
    const std::vector<size_t> doc_counts = {64, 256, 1024};
    for (const size_t count : doc_counts) {
      const std::vector<std::string> docs = MakeDocs(
          corpus.substr(0, std::min<size_t>(corpus.size(), count * 512)),
          count);
      auto family =
          FreshFamily(dir + "/insert_" + std::to_string(count) + ".spinefam");
      uint64_t chars = 0;
      WallTimer timer;
      for (const std::string& doc : docs) {
        SPINE_CHECK(family->InsertDocument(doc).ok());
        chars += doc.size();
      }
      const double ms = timer.ElapsedMillis();
      const double docs_per_s = ms > 0 ? docs.size() / ms * 1e3 : 0;
      const double mchars_per_s = ms > 0 ? chars / ms / 1e3 : 0;
      table.AddRow({FormatCount(docs.size()), FormatCount(chars),
                    FormatDouble(ms, 2), FormatDouble(docs_per_s, 0),
                    FormatDouble(mchars_per_s, 2)});
      const std::string key = "insert_" + std::to_string(count);
      report.AddMetric(key + "_ms", ms);
      report.AddMetric(key + "_docs_per_s", docs_per_s);
    }
    table.Print();
  }

  // --- 2. flush cost vs memtable size ---------------------------------------
  {
    TablePrinter table({"memtable chars", "docs", "flush ms"});
    const std::vector<size_t> memtable_chars = {65'536, 262'144, 1'048'576};
    for (size_t si = 0; si < memtable_chars.size(); ++si) {
      const size_t chars =
          std::min<size_t>(corpus.size(),
                           static_cast<size_t>(memtable_chars[si] * scale));
      const std::vector<std::string> docs =
          MakeDocs(corpus.substr(0, chars), 32);
      auto family =
          FreshFamily(dir + "/flush_" + std::to_string(si) + ".spinefam");
      for (const std::string& doc : docs) {
        SPINE_CHECK(family->InsertDocument(doc).ok());
      }
      WallTimer timer;
      SPINE_CHECK(family->Flush().ok());
      const double ms = timer.ElapsedMillis();
      table.AddRow({FormatCount(chars), FormatCount(docs.size()),
                    FormatDouble(ms, 2)});
      report.AddMetric("flush_s" + std::to_string(si) + "_chars",
                       static_cast<uint64_t>(chars));
      report.AddMetric("flush_s" + std::to_string(si) + "_ms", ms);
    }
    table.Print();
  }

  // --- 3. compaction pause vs shard fanout ----------------------------------
  {
    TablePrinter table({"shards", "total chars", "compact ms"});
    const std::vector<uint32_t> fanouts = {2, 4, 8};
    for (const uint32_t fanout : fanouts) {
      auto family =
          FreshFamily(dir + "/compact_" + std::to_string(fanout) + ".spinefam");
      const size_t per_shard =
          std::min<size_t>(corpus.size() / fanout,
                           static_cast<size_t>(131'072 * scale));
      uint64_t chars = 0;
      for (uint32_t s = 0; s < fanout; ++s) {
        for (const std::string& doc : MakeDocs(
                 corpus.substr(s * per_shard, per_shard), 8)) {
          SPINE_CHECK(family->InsertDocument(doc).ok());
          chars += doc.size();
        }
        SPINE_CHECK(family->Flush().ok());
      }
      SPINE_CHECK(family->frozen_shard_count() == fanout);
      WallTimer timer;
      SPINE_CHECK(family->Compact().ok());
      const double ms = timer.ElapsedMillis();
      SPINE_CHECK(family->frozen_shard_count() == 1);
      table.AddRow({FormatCount(fanout), FormatCount(chars),
                    FormatDouble(ms, 2)});
      report.AddMetric("compact_f" + std::to_string(fanout) + "_ms", ms);
    }
    table.Print();
  }

  // --- 4. query latency during compaction -----------------------------------
  {
    auto family = FreshFamily(dir + "/race.spinefam");
    const size_t per_shard =
        std::min<size_t>(corpus.size() / 6,
                         static_cast<size_t>(131'072 * scale));
    for (uint32_t s = 0; s < 6; ++s) {
      for (const std::string& doc :
           MakeDocs(corpus.substr(s * per_shard, per_shard), 8)) {
        SPINE_CHECK(family->InsertDocument(doc).ok());
      }
      SPINE_CHECK(family->Flush().ok());
    }
    const Query query = Query::FindAll(probe);

    auto measure = [&](size_t iterations) {
      std::vector<double> lat_ms;
      lat_ms.reserve(iterations);
      for (size_t i = 0; i < iterations; ++i) {
        WallTimer timer;
        const QueryResult result = family->Execute(query);
        lat_ms.push_back(timer.ElapsedMillis());
        SPINE_CHECK(result.ok());
      }
      return lat_ms;
    };

    // Quiescent baseline.
    std::vector<double> quiet = measure(200);

    // Same measurement with a compaction running on another thread.
    std::thread compactor([&] { SPINE_CHECK(family->Compact().ok()); });
    std::vector<double> racing = measure(200);
    compactor.join();

    const double quiet_p50 = Quantile(quiet, 0.50);
    const double quiet_p99 = Quantile(quiet, 0.99);
    const double racing_p50 = Quantile(racing, 0.50);
    const double racing_p99 = Quantile(racing, 0.99);
    TablePrinter table({"phase", "p50 ms", "p99 ms"});
    table.AddRow({"quiescent", FormatDouble(quiet_p50, 3),
                  FormatDouble(quiet_p99, 3)});
    table.AddRow({"during compaction", FormatDouble(racing_p50, 3),
                  FormatDouble(racing_p99, 3)});
    table.Print();
    report.AddMetric("query_quiescent_p50_ms", quiet_p50);
    report.AddMetric("query_quiescent_p99_ms", quiet_p99);
    report.AddMetric("query_during_compaction_p50_ms", racing_p50);
    report.AddMetric("query_during_compaction_p99_ms", racing_p99);
  }

  std::printf("\ntarget: query p99 during compaction stays within a small "
              "factor of quiescent p99 (readers never block on the merge).\n");
  std::filesystem::remove_all(dir);
  SPINE_CHECK(report.Write().ok());
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
