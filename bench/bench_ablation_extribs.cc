// Ablation: the extrib machinery (Section 2.6). Extribs exist so a
// rib's threshold never has to be raised in place (which would create
// false positives). This bench quantifies what that costs and how much
// it is exercised: how many extribs exist, how long the shared chains
// get, and how often construction and search actually walk them.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util/table.h"
#include "common/check.h"
#include "core/matcher.h"
#include "core/spine_index.h"
#include "seq/datasets.h"

namespace spine::bench {
namespace {

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Ablation", "extrib machinery (Section 2.6)", scale);

  TablePrinter table({"Genome", "Nodes", "Ribs", "Extribs", "Extribs/node",
                      "Max chain", "Search chain hops", "Hops/check"});
  for (const char* name : {"ECO", "CEL", "HC21"}) {
    std::string s = seq::MakeDataset(seq::DatasetByName(name), scale);
    SpineIndex index(Alphabet::Dna());
    SPINE_CHECK(index.AppendString(s).ok());

    // Longest shared extrib chain (walk from every chain head).
    uint64_t max_chain = 0;
    index.ForEachExtrib([&](NodeId source, const SpineIndex::Extrib&) {
      uint64_t length = 0;
      NodeId x = source;
      while (const SpineIndex::Extrib* e = index.FindExtrib(x)) {
        ++length;
        x = e->dest;
      }
      max_chain = std::max(max_chain, length);
    });

    // How often search touches chains: stream an unrelated query
    // (a different dataset than the indexed one).
    std::string query = seq::MakeDataset(
        seq::DatasetByName(std::string(name) == "ECO" ? "CEL" : "ECO"),
        scale);
    SearchStats stats;
    GenericFindMaximalMatches(index, query, 20, &stats);

    table.AddRow(
        {name, FormatCount(index.size()), FormatCount(index.rib_count()),
         FormatCount(index.extrib_count()),
         FormatPercent(static_cast<double>(index.extrib_count()) /
                       static_cast<double>(index.size())),
         FormatCount(max_chain), FormatCount(stats.chain_hops),
         FormatDouble(static_cast<double>(stats.chain_hops) /
                          static_cast<double>(stats.nodes_checked),
                      4)});
  }
  table.Print();
  std::printf("\ntakeaway: extribs are rare (a few %% of nodes), chains stay "
              "short, and search\ntouches them on a tiny fraction of node "
              "checks — the false-positive guarantee\ncosts almost nothing, "
              "which is why the paper's Table 2 budget of one extrib\nslot "
              "per node is generous.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
