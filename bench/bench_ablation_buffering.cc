// Ablation for the Section 6.2 buffering observation: link destinations
// skew toward the top of the backbone (Fig. 8), so when memory is
// scarce, "retain as much as possible of the top part of the Link Table
// in memory" should beat generic replacement. Sweeps pool sizes and
// replacement policies over a disk-resident SPINE search workload and
// reports hit rates and modeled times.

#include <cstdio>
#include <string>

#include "bench_util/table.h"
#include "common/check.h"
#include "core/matcher.h"
#include "seq/datasets.h"
#include "storage/disk_model.h"
#include "storage/disk_spine.h"

namespace spine::bench {
namespace {

constexpr uint32_t kMinMatchLen = 12;

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Ablation", "buffer replacement policy for disk SPINE search",
              scale);

  std::string data = seq::MakeDataset(seq::DatasetByName("CEL"), scale);
  std::string query = seq::MakeDataset(seq::DatasetByName("ECO"), scale);
  std::string dir = ::getenv("TMPDIR") ? ::getenv("TMPDIR") : "/tmp";
  storage::DiskCostModel model;

  TablePrinter table({"Pool frames", "Policy", "Hit rate", "Misses",
                      "Modeled s"});
  for (uint32_t frames : {64u, 256u, 1024u}) {
    for (auto policy :
         {storage::ReplacementPolicy::kLru, storage::ReplacementPolicy::kClock,
          storage::ReplacementPolicy::kPinTop}) {
      storage::DiskSpine::Options options;
      options.pool_frames = frames;
      options.policy = policy;
      auto index = storage::DiskSpine::Create(
          Alphabet::Dna(), dir + "/ablation_buf.idx", options);
      SPINE_CHECK(index.ok());
      SPINE_CHECK((*index)->AppendString(data).ok());
      (*index)->ResetIoStats();
      GenericFindMaximalMatches(**index, query, kMinMatchLen);
      const storage::IoStats& io = (*index)->io_stats();
      table.AddRow({FormatCount(frames), storage::PolicyName(policy),
                    FormatPercent(io.HitRate()), FormatCount(io.misses),
                    FormatDouble(model.ModeledSeconds(io), 2)});
    }
  }
  table.Print();
  std::printf("\nexpected shape: at small pools PIN-TOP matches or beats LRU "
              "(mismatch handling\njumps to the top of the backbone); with "
              "ample memory all policies converge.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
