// Compaction-ratio bench: quantifies the paper's Figures 1-3 story —
// how many nodes the raw suffix trie has, what vertical compaction
// (suffix tree) saves, and what complete horizontal compaction (SPINE)
// saves. Includes the paper's worked example ("aaccacaaca": trie vs ST
// 13 nodes / 16 edges vs SPINE 11 nodes / 26 edges) and random genomes
// small enough for the quadratic trie.

#include <cstdio>
#include <string>

#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "compact/compact_spine.h"
#include "core/spine_index.h"
#include "seq/generator.h"
#include "suffix_tree/suffix_tree.h"
#include "trie/suffix_trie.h"

namespace spine::bench {
namespace {

void Run() {
  PrintBanner("Figures 1-3", "trie vs suffix tree vs SPINE compaction",
              /*scale=*/1.0);

  BenchReport report("compaction_ratio", /*scale=*/1.0);
  TablePrinter table({"String", "Length", "Trie nodes", "ST nodes",
                      "SPINE nodes", "SPINE edges", "Trie/SPINE"});

  auto add_row = [&](const std::string& name, const std::string& s) {
    Result<SuffixTrie> trie = SuffixTrie::Build(Alphabet::Dna(), s);
    SPINE_CHECK(trie.ok());
    SuffixTree tree(Alphabet::Dna());
    SPINE_CHECK(tree.AppendString(s).ok());
    SpineIndex spine(Alphabet::Dna());
    SPINE_CHECK(spine.AppendString(s).ok());
    uint64_t spine_nodes = spine.size() + 1;
    uint64_t spine_edges = 2 * spine.size() +  // vertebras + links
                           spine.rib_count() + spine.extrib_count();
    table.AddRow({name, FormatCount(s.size()),
                  FormatCount(trie->node_count()),
                  FormatCount(tree.node_count()), FormatCount(spine_nodes),
                  FormatCount(spine_edges),
                  FormatDouble(static_cast<double>(trie->node_count()) /
                               static_cast<double>(spine_nodes)) +
                      "x"});
    const std::string key = std::to_string(s.size());
    report.AddMetric("trie_nodes_" + key, trie->node_count());
    report.AddMetric("st_nodes_" + key, tree.node_count());
    report.AddMetric("spine_nodes_" + key, spine_nodes);
  };

  add_row("paper example", "aaccacaaca");

  seq::GeneratorOptions options;
  for (uint64_t length : {500, 2000, 6000}) {
    options.length = length;
    options.seed = length;
    add_row("synthetic " + std::to_string(length),
            seq::GenerateSequence(Alphabet::Dna(), options));
  }
  table.Print();
  SPINE_CHECK(report.Write().ok());
  std::printf("\npaper (for \"aaccacaaca\"): SPINE has 11 nodes and 26 edges "
              "while the suffix tree\nhas 13 nodes and 16 edges; SPINE's "
              "node count always equals string length + 1,\nwhile tries grow "
              "~quadratically and suffix trees up to 2n.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
