// Reproduces Table 3 ("Maximum Label Values"): the largest numeric label
// (PT / LEL / PRT) observed when building SPINE over each genome. The
// paper's observation: maxima stay far below 65536 even for human
// chromosomes, justifying 2-byte label fields with an overflow table.

#include <algorithm>
#include <cstdio>

#include "bench_util/table.h"
#include "common/check.h"
#include "compact/compact_spine.h"
#include "seq/datasets.h"

namespace spine::bench {
namespace {

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Table 3", "maximum numeric label values per genome", scale);

  TablePrinter table({"Genome", "Length", "Max LEL", "Max PT", "Max PRT",
                      "Max label", "fits 2 bytes?"});
  for (const seq::DatasetSpec& spec : seq::AllDatasets()) {
    if (spec.is_protein) continue;
    std::string s = seq::MakeDataset(spec, scale);
    CompactSpineIndex index(seq::DatasetAlphabet(spec));
    Status status = index.AppendString(s);
    SPINE_CHECK_MSG(status.ok(), status.ToString().c_str());
    uint32_t max_label =
        std::max({index.max_lel(), index.max_pt(), index.max_prt()});
    table.AddRow({spec.name, FormatMega(s.size()),
                  FormatCount(index.max_lel()), FormatCount(index.max_pt()),
                  FormatCount(index.max_prt()), FormatCount(max_label),
                  max_label <= 0xffff ? "yes" : "no (overflow table)"});
  }
  table.Print();
  std::printf("\npaper (full-scale genomes): max label values 1,785 (ECO), "
              "8,187 (CEL),\n21,844 (HC21), 12,371 (HC19) — all well below "
              "65,536.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
