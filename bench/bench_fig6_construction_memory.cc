// Reproduces Figure 6 ("Index Construction Times, In Memory"):
// wall-clock construction time of the suffix tree (ST) vs SPINE for each
// genome, plus the memory-budget effect: under the paper's 1 GB budget
// (scaled with the dataset scale) the ST runs out of memory on the
// largest chromosome while SPINE completes — SPINE handles ~30% longer
// strings for a given budget.

#include <cstdio>

#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "seq/datasets.h"
#include "suffix_tree/packed_suffix_tree.h"
#include "suffix_tree/suffix_tree.h"

namespace spine::bench {
namespace {

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Figure 6", "in-memory construction time, ST vs SPINE", scale);
  const uint64_t budget =
      static_cast<uint64_t>(1024.0 * 1024.0 * 1024.0 * scale);
  std::printf("memory budget (paper's 1 GiB, scaled): %s\n\n",
              FormatBytes(budget).c_str());

  TablePrinter table({"Genome", "Length", "ST secs", "SPINE secs",
                      "ST bytes (Kurtz-class)", "SPINE bytes", "ST fits?",
                      "SPINE fits?"});
  for (const seq::DatasetSpec& spec : seq::AllDatasets()) {
    if (spec.is_protein) continue;
    std::string s = seq::MakeDataset(spec, scale);

    // The paper's ST is MUMmer's ~17 B/char implementation; our
    // equivalent is the (head, depth)-packed tree.
    WallTimer st_timer;
    PackedSuffixTree tree(seq::DatasetAlphabet(spec));
    Status st_status = tree.AppendString(s);
    SPINE_CHECK_MSG(st_status.ok(), st_status.ToString().c_str());
    double st_secs = st_timer.ElapsedSeconds();
    uint64_t st_bytes = tree.MemoryBytes();

    WallTimer spine_timer;
    CompactSpineIndex index(seq::DatasetAlphabet(spec));
    Status sp_status = index.AppendString(s);
    SPINE_CHECK_MSG(sp_status.ok(), sp_status.ToString().c_str());
    double spine_secs = spine_timer.ElapsedSeconds();
    uint64_t spine_bytes =
        index.LogicalBytes().Total();  // the Section 5 layout's bytes

    table.AddRow({spec.name, FormatMega(s.size()), FormatDouble(st_secs),
                  FormatDouble(spine_secs), FormatBytes(st_bytes),
                  FormatBytes(spine_bytes),
                  st_bytes <= budget ? "yes" : "NO (out of budget)",
                  spine_bytes <= budget ? "yes" : "NO (out of budget)"});
  }
  table.Print();
  std::printf(
      "\npaper: both indexes build in < 2 s/Mbp; SPINE slightly faster, and "
      "ST exceeds\nthe 1 GiB budget on HC19 while SPINE completes (SPINE "
      "handles ~30%% more string\nfor a given budget).\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
