// Serving latency under open-loop load: an in-process serve::Server
// over the synthetic DNA corpus (or, with --host/--port, any external
// `spine serve` instance) is driven at a sweep of target QPS points by
// an open-loop generator — requests are sent on a fixed schedule
// regardless of how fast responses come back, so queueing delay shows
// up in the numbers instead of being coordinated away. Reports
// p50/p99/p999 latency, achieved throughput and shed counts per point,
// and writes BENCH_serve.json.
//
//   $ ./bench/bench_serve [--duration=S] [--qps=A,B,C] [--conns=N]
//                         [--host=ADDR --port=N]
//
// Latency is measured from each request's *scheduled* send time to the
// receipt of its response (docs/SERVING.md describes the protocol).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "compact/compact_spine.h"
#include "core/adapters.h"
#include "core/query.h"
#include "core/wire.h"
#include "seq/datasets.h"
#include "seq/generator.h"
#include "serve/client.h"
#include "serve/server.h"

namespace spine::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint64_t kCorpusLen = 2'000'000;

struct Args {
  double duration = 2.0;                     // seconds per QPS point
  std::vector<double> qps = {500, 2000, 8000};
  uint32_t conns = 4;
  std::string host = "127.0.0.1";
  std::optional<uint16_t> port;              // set → external server
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](std::string_view prefix) {
      return std::string(arg.substr(prefix.size()));
    };
    if (arg.starts_with("--duration=")) {
      args.duration = std::atof(value("--duration=").c_str());
    } else if (arg.starts_with("--conns=")) {
      args.conns = static_cast<uint32_t>(
          std::strtoul(value("--conns=").c_str(), nullptr, 10));
    } else if (arg.starts_with("--host=")) {
      args.host = value("--host=");
    } else if (arg.starts_with("--port=")) {
      args.port = static_cast<uint16_t>(
          std::strtoul(value("--port=").c_str(), nullptr, 10));
    } else if (arg.starts_with("--qps=")) {
      args.qps.clear();
      std::string list = value("--qps=");
      for (size_t pos = 0; pos < list.size();) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        args.qps.push_back(std::atof(list.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", std::string(arg).c_str());
      std::exit(2);
    }
  }
  SPINE_CHECK(args.duration > 0 && args.conns > 0 && !args.qps.empty());
  for (double q : args.qps) SPINE_CHECK(q > 0);
  return args;
}

// The request mix mirrors bench_engine_throughput: mostly short exact
// lookups with some maximal-match and matching-stats work mixed in.
std::vector<core::wire::QueryRequest> MakeWorkload(const std::string& corpus,
                                                   size_t count) {
  std::vector<core::wire::QueryRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t offset = (i * 786'433) % (corpus.size() - 512);
    Query query;
    switch (i % 8) {
      case 0: case 1: case 2: case 3: case 4:
        query = Query::FindAll(corpus.substr(offset, 12 + i % 16));
        break;
      case 5: {
        std::string pattern = corpus.substr(offset, 20);
        pattern[10] = pattern[10] == 'A' ? 'C' : 'A';
        query = Query::Contains(pattern);
        break;
      }
      case 6:
        query = Query::MaximalMatches(corpus.substr(offset, 120), 16);
        break;
      default:
        query = Query::MatchingStats(corpus.substr(offset, 96));
        break;
    }
    requests.push_back({static_cast<uint64_t>(i), std::move(query)});
  }
  return requests;
}

struct PointResult {
  double target_qps = 0;
  double achieved_qps = 0;
  uint64_t sent = 0;
  uint64_t answered = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t errors = 0;  // transport-level failures (should be zero)
  double p50_us = 0, p99_us = 0, p999_us = 0;
};

double Percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  const size_t idx = std::min(
      sorted_us.size() - 1, static_cast<size_t>(q * sorted_us.size()));
  return sorted_us[idx];
}

// One open-loop point: `total` requests spread evenly over the
// duration across `conns` pipelined connections (request i goes to
// connection i % conns, so each connection's sub-stream is also evenly
// spaced). Senders never wait for responses; receivers stamp each
// response against the request's scheduled send time.
PointResult RunPoint(const Args& args, uint16_t port, double qps,
                     const std::vector<core::wire::QueryRequest>& workload) {
  PointResult point;
  point.target_qps = qps;
  const uint64_t total =
      std::max<uint64_t>(1, static_cast<uint64_t>(qps * args.duration));
  const std::chrono::duration<double> period(1.0 / qps);

  struct Lane {
    serve::Client client;
    std::vector<uint64_t> ids;
    std::vector<double> latencies_us;
    uint64_t ok = 0, shed = 0, deadline_exceeded = 0, errors = 0;
  };
  std::vector<std::unique_ptr<Lane>> lanes;
  for (uint32_t c = 0; c < args.conns; ++c) {
    auto client = serve::Client::Connect(args.host, port);
    SPINE_CHECK(client.ok());
    lanes.push_back(std::make_unique<Lane>(Lane{std::move(*client), {}, {}}));
  }
  for (uint64_t i = 0; i < total; ++i) {
    lanes[i % args.conns]->ids.push_back(i);
  }

  const Clock::time_point t0 = Clock::now() + std::chrono::milliseconds(20);
  const auto scheduled = [&](uint64_t i) {
    return t0 + std::chrono::duration_cast<Clock::duration>(
                    period * static_cast<double>(i));
  };

  std::vector<std::thread> threads;
  for (auto& lane_ptr : lanes) {
    Lane* lane = lane_ptr.get();
    // Sender: fire each request at its scheduled instant, come what may.
    threads.emplace_back([&, lane] {
      for (uint64_t i : lane->ids) {
        std::this_thread::sleep_until(scheduled(i));
        if (!lane->client.Send(workload[i % workload.size()]).ok()) return;
      }
    });
    // Receiver: responses arrive in send order on this connection.
    threads.emplace_back([&, lane] {
      lane->latencies_us.reserve(lane->ids.size());
      for (uint64_t i : lane->ids) {
        auto response = lane->client.ReceiveResponse();
        if (!response.ok()) {
          ++lane->errors;
          return;  // transport failure: the rest of the lane is lost
        }
        const std::chrono::duration<double, std::micro> latency =
            Clock::now() - scheduled(i);
        lane->latencies_us.push_back(latency.count());
        if (response->result.status_code == StatusCode::kOverloaded) {
          ++lane->shed;
        } else if (response->result.status_code ==
                   StatusCode::kDeadlineExceeded) {
          ++lane->deadline_exceeded;
        } else if (response->result.ok()) {
          ++lane->ok;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::chrono::duration<double> elapsed = Clock::now() - t0;

  std::vector<double> all_us;
  for (auto& lane : lanes) {
    point.sent += lane->ids.size();
    point.answered += lane->latencies_us.size();
    point.ok += lane->ok;
    point.shed += lane->shed;
    point.deadline_exceeded += lane->deadline_exceeded;
    point.errors += lane->errors;
    all_us.insert(all_us.end(), lane->latencies_us.begin(),
                  lane->latencies_us.end());
  }
  std::sort(all_us.begin(), all_us.end());
  point.p50_us = Percentile(all_us, 0.50);
  point.p99_us = Percentile(all_us, 0.99);
  point.p999_us = Percentile(all_us, 0.999);
  point.achieved_qps = point.answered / elapsed.count();
  return point;
}

void Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const double scale = seq::BenchScaleFromEnv();
  PrintBanner("Serve", "open-loop serving latency vs offered QPS", scale);

  seq::GeneratorOptions gen;
  gen.length = static_cast<uint64_t>(kCorpusLen * scale);
  gen.seed = 17;
  const std::string corpus = seq::GenerateSequence(Alphabet::Dna(), gen);
  const std::vector<core::wire::QueryRequest> workload =
      MakeWorkload(corpus, 4096);

  // Default: an in-process server over the synthetic corpus. With
  // --port the sweep targets an external `spine serve` instead (the CI
  // smoke job does this) and the local index is only a pattern source.
  std::unique_ptr<CompactSpineIndex> index;
  std::unique_ptr<core::CompactSpineAdapter> adapter;
  std::unique_ptr<serve::Server> server;
  uint16_t port = 0;
  if (args.port) {
    port = *args.port;
    std::printf("target: external server at %s:%u\n\n", args.host.c_str(),
                static_cast<unsigned>(port));
  } else {
    index = std::make_unique<CompactSpineIndex>(Alphabet::Dna());
    SPINE_CHECK(index->AppendString(corpus).ok());
    adapter = std::make_unique<core::CompactSpineAdapter>(*index);
    serve::Options options;
    options.host = args.host;
    server = std::make_unique<serve::Server>(*adapter, options);
    SPINE_CHECK(server->Start().ok());
    port = server->port();
    std::printf("target: in-process server, %zu-char corpus, port %u\n\n",
                corpus.size(), static_cast<unsigned>(port));
  }

  BenchReport report("serve", scale);
  report.AddMetric("corpus_chars", static_cast<uint64_t>(corpus.size()));
  report.AddMetric("conns", static_cast<uint64_t>(args.conns));
  report.AddMetric("duration_secs", args.duration);
  report.AddMetric("qps_points", static_cast<uint64_t>(args.qps.size()));
  report.AddInfo("mode", args.port ? "external" : "in-process");

  TablePrinter table({"target qps", "achieved", "sent", "ok", "shed",
                      "p50 us", "p99 us", "p999 us"});
  bool clean = true;
  for (size_t i = 0; i < args.qps.size(); ++i) {
    const PointResult point = RunPoint(args, port, args.qps[i], workload);
    table.AddRow({FormatCount(static_cast<uint64_t>(point.target_qps)),
                  FormatCount(static_cast<uint64_t>(point.achieved_qps)),
                  FormatCount(point.sent), FormatCount(point.ok),
                  FormatCount(point.shed), FormatDouble(point.p50_us, 1),
                  FormatDouble(point.p99_us, 1),
                  FormatDouble(point.p999_us, 1)});
    const std::string key = "q" + std::to_string(i);
    report.AddMetric(key + "_target_qps", point.target_qps);
    report.AddMetric(key + "_achieved_qps", point.achieved_qps);
    report.AddMetric(key + "_sent", point.sent);
    report.AddMetric(key + "_ok", point.ok);
    report.AddMetric(key + "_shed", point.shed);
    report.AddMetric(key + "_p50_us", point.p50_us);
    report.AddMetric(key + "_p99_us", point.p99_us);
    report.AddMetric(key + "_p999_us", point.p999_us);
    clean = clean && point.errors == 0 && point.answered == point.sent;
    if (point.errors != 0 || point.answered != point.sent) {
      std::printf("  WARNING: point %zu lost responses (%llu answered of "
                  "%llu sent, %llu transport errors)\n",
                  i, static_cast<unsigned long long>(point.answered),
                  static_cast<unsigned long long>(point.sent),
                  static_cast<unsigned long long>(point.errors));
    }
  }
  table.Print();

  // Deadline sweep (PR 7): the same open-loop generator at the highest
  // QPS point, with every request carrying a per-request budget. Every
  // request is still answered — just some with kDeadlineExceeded once
  // the budget (which includes batch-window queueing) runs out. The
  // 0 ms row is the unbounded control.
  const std::vector<uint32_t> deadline_sweep = {0, 50, 5, 1};
  const double deadline_qps = args.qps.back();
  std::printf("\ndeadline sweep at %s target qps (0 = unbounded):\n",
              FormatCount(static_cast<uint64_t>(deadline_qps)).c_str());
  TablePrinter deadline_table({"deadline ms", "sent", "ok", "dl exceeded",
                               "shed", "p50 us", "p99 us"});
  for (size_t i = 0; i < deadline_sweep.size(); ++i) {
    std::vector<core::wire::QueryRequest> bounded = workload;
    for (core::wire::QueryRequest& request : bounded) {
      request.query.deadline_ms = deadline_sweep[i];
    }
    const PointResult point = RunPoint(args, port, deadline_qps, bounded);
    deadline_table.AddRow(
        {FormatCount(deadline_sweep[i]), FormatCount(point.sent),
         FormatCount(point.ok), FormatCount(point.deadline_exceeded),
         FormatCount(point.shed), FormatDouble(point.p50_us, 1),
         FormatDouble(point.p99_us, 1)});
    const std::string key = "d" + std::to_string(i);
    report.AddMetric(key + "_deadline_ms",
                     static_cast<uint64_t>(deadline_sweep[i]));
    report.AddMetric(key + "_sent", point.sent);
    report.AddMetric(key + "_ok", point.ok);
    report.AddMetric(key + "_deadline_exceeded", point.deadline_exceeded);
    report.AddMetric(key + "_shed", point.shed);
    report.AddMetric(key + "_p50_us", point.p50_us);
    report.AddMetric(key + "_p99_us", point.p99_us);
    clean = clean && point.errors == 0 && point.answered == point.sent;
    if (point.errors != 0 || point.answered != point.sent) {
      std::printf("  WARNING: deadline point %u ms lost responses "
                  "(%llu answered of %llu sent, %llu transport errors)\n",
                  deadline_sweep[i],
                  static_cast<unsigned long long>(point.answered),
                  static_cast<unsigned long long>(point.sent),
                  static_cast<unsigned long long>(point.errors));
    }
  }
  deadline_table.Print();

  if (server) {
    server->Stop();
    const serve::ServerStats stats = server->stats();
    std::printf("\nserver totals: %llu queries, %llu shed, %llu bytes in, "
                "%llu bytes out\n",
                static_cast<unsigned long long>(stats.queries),
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.bytes_in),
                static_cast<unsigned long long>(stats.bytes_out));
  }
  std::printf("\ntarget: every request answered; shed only via "
              "kOverloaded under deliberate overload.\n");
  SPINE_CHECK(clean);
  SPINE_CHECK(report.Write().ok());
}

}  // namespace
}  // namespace spine::bench

int main(int argc, char** argv) {
  spine::bench::Run(argc, argv);
  return 0;
}
