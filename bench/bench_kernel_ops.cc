// Comparison-kernel throughput: bytes/sec of MatchRun per dispatch
// level per pattern-length bucket, for the raw byte path and the
// 2-bit-packed DNA path (32 bases per 64-bit word). The table is the
// evidence behind the kernel dispatch default: the widest supported
// level should win by >= 2x over forced scalar on runs of 32 bytes and
// up, while short runs show where the fixed dispatch overhead sits.

#include <cstdio>
#include <string>
#include <vector>

#include "alphabet/packed_string.h"
#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kernel/kernel.h"
#include "seq/datasets.h"

namespace spine::bench {
namespace {

constexpr uint64_t kBytesPerBucket = 512ull << 20;  // per cell, pre-scale
constexpr size_t kByteBuckets[] = {16, 32, 256, 4096, 65536};
constexpr size_t kCodeBuckets[] = {64, 1024, 32768};  // 2-bit codes

// Full-match compares from a rotating start so the compiler cannot
// hoist the comparison out of the timing loop.
double ByteRunThroughput(const kernel::Ops& ops, size_t len, uint64_t budget) {
  Rng rng(1);
  std::vector<uint8_t> a(len + 8), b(len + 8);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<uint8_t>(rng.Below(4));
  }
  b = a;
  const uint64_t reps = budget / len > 0 ? budget / len : 1;
  size_t sink = 0;
  WallTimer timer;
  for (uint64_t r = 0; r < reps; ++r) {
    const size_t off = r % 8;
    sink += ops.match_run(a.data() + off, b.data() + off, len);
  }
  const double secs = timer.ElapsedSeconds();
  SPINE_CHECK(sink == reps * len);
  return static_cast<double>(reps) * static_cast<double>(len) / secs;
}

// Packed compares at 2 bits/code; throughput counted in code bytes
// (n/4) to stay comparable with the byte path.
double PackedRunThroughput(const kernel::Ops& ops, size_t codes,
                           uint64_t budget) {
  Rng rng(2);
  PackedString a(2), b(2);
  for (size_t i = 0; i < codes + 32; ++i) {
    const Code c = static_cast<Code>(rng.Below(4));
    a.Append(c);
    b.Append(c);
  }
  const uint64_t code_bytes = codes / 4;
  const uint64_t reps = budget / code_bytes > 0 ? budget / code_bytes : 1;
  size_t sink = 0;
  WallTimer timer;
  for (uint64_t r = 0; r < reps; ++r) {
    const uint64_t off = (r % 8) * 2;
    sink += ops.match_run_packed(a.words().data(), a.words().size(), off,
                                 b.words().data(), b.words().size(), off,
                                 codes, 2);
  }
  const double secs = timer.ElapsedSeconds();
  SPINE_CHECK(sink == reps * codes);
  return static_cast<double>(reps) * static_cast<double>(code_bytes) / secs;
}

std::string FormatBps(double bps) {
  return FormatDouble(bps / (1024.0 * 1024.0 * 1024.0), 2) + " GiB/s";
}

void Run() {
  const double scale = seq::BenchScaleFromEnv();
  PrintBanner("Kernels", "MatchRun bytes/sec per dispatch level", scale);
  const uint64_t budget =
      static_cast<uint64_t>(static_cast<double>(kBytesPerBucket) * scale);

  const std::vector<kernel::Kind> kinds = kernel::SupportedKinds();
  BenchReport report("kernel_ops", scale);
  report.AddInfo("auto_kernel", kernel::KindName(kernel::ActiveKind()));

  std::vector<std::string> header = {"len (bytes)"};
  for (const kernel::Kind kind : kinds) {
    header.push_back(kernel::KindName(kind));
  }
  header.push_back("best/scalar");

  TablePrinter bytes_table(header);
  for (const size_t len : kByteBuckets) {
    std::vector<std::string> row = {std::to_string(len)};
    double scalar_bps = 0, best_bps = 0;
    for (const kernel::Kind kind : kinds) {
      const double bps = ByteRunThroughput(kernel::Get(kind), len, budget);
      if (kind == kernel::Kind::kScalar) scalar_bps = bps;
      if (bps > best_bps) best_bps = bps;
      row.push_back(FormatBps(bps));
      report.AddMetric(std::string("bytes_") + kernel::KindName(kind) + "_" +
                           std::to_string(len),
                       bps);
    }
    row.push_back(FormatDouble(best_bps / scalar_bps, 2) + "x");
    bytes_table.AddRow(std::move(row));
  }
  std::printf("byte path (raw labels):\n");
  bytes_table.Print();

  std::vector<std::string> packed_header = {"codes (2-bit)"};
  for (const kernel::Kind kind : kinds) {
    packed_header.push_back(kernel::KindName(kind));
  }
  packed_header.push_back("best/scalar");

  TablePrinter packed_table(packed_header);
  for (const size_t codes : kCodeBuckets) {
    std::vector<std::string> row = {std::to_string(codes)};
    double scalar_bps = 0, best_bps = 0;
    for (const kernel::Kind kind : kinds) {
      const double bps = PackedRunThroughput(kernel::Get(kind), codes, budget);
      if (kind == kernel::Kind::kScalar) scalar_bps = bps;
      if (bps > best_bps) best_bps = bps;
      row.push_back(FormatBps(bps));
      report.AddMetric(std::string("packed_") + kernel::KindName(kind) + "_" +
                           std::to_string(codes),
                       bps);
    }
    row.push_back(FormatDouble(best_bps / scalar_bps, 2) + "x");
    packed_table.AddRow(std::move(row));
  }
  std::printf("\npacked path (DNA backbone labels, 32 bases/word):\n");
  packed_table.Print();

  const Status status = report.Write();
  SPINE_CHECK(status.ok());
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
