// Google-benchmark microbenchmarks: per-operation costs of the three
// index structures (append throughput, point search, occurrence
// enumeration). Complements the table-level benches with steady-state
// per-op numbers.

#include <benchmark/benchmark.h>

#include <string>

#include "common/rng.h"
#include "compact/compact_spine.h"
#include "core/spine_index.h"
#include "seq/generator.h"
#include "dawg/suffix_automaton.h"
#include "suffix_tree/packed_suffix_tree.h"
#include "suffix_tree/suffix_tree.h"

namespace spine {
namespace {

std::string MakeGenome(uint64_t length) {
  seq::GeneratorOptions options;
  options.length = length;
  options.seed = 7;
  return seq::GenerateSequence(Alphabet::Dna(), options);
}

void BM_SpineReferenceAppend(benchmark::State& state) {
  std::string s = MakeGenome(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    SpineIndex index(Alphabet::Dna());
    benchmark::DoNotOptimize(index.AppendString(s));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(s.size()));
}
BENCHMARK(BM_SpineReferenceAppend)->Arg(1 << 16);

void BM_SpineCompactAppend(benchmark::State& state) {
  std::string s = MakeGenome(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    CompactSpineIndex index(Alphabet::Dna());
    benchmark::DoNotOptimize(index.AppendString(s));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(s.size()));
}
BENCHMARK(BM_SpineCompactAppend)->Arg(1 << 16);

void BM_SuffixTreeAppend(benchmark::State& state) {
  std::string s = MakeGenome(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    SuffixTree tree(Alphabet::Dna());
    benchmark::DoNotOptimize(tree.AppendString(s));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(s.size()));
}
BENCHMARK(BM_SuffixTreeAppend)->Arg(1 << 16);

void BM_PackedSuffixTreeAppend(benchmark::State& state) {
  std::string s = MakeGenome(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    PackedSuffixTree tree(Alphabet::Dna());
    benchmark::DoNotOptimize(tree.AppendString(s));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(s.size()));
}
BENCHMARK(BM_PackedSuffixTreeAppend)->Arg(1 << 16);

void BM_SuffixAutomatonAppend(benchmark::State& state) {
  std::string s = MakeGenome(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    SuffixAutomaton dawg(Alphabet::Dna());
    benchmark::DoNotOptimize(dawg.AppendString(s));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(s.size()));
}
BENCHMARK(BM_SuffixAutomatonAppend)->Arg(1 << 16);

void BM_SpineCompactContains(benchmark::State& state) {
  std::string s = MakeGenome(1 << 18);
  CompactSpineIndex index(Alphabet::Dna());
  (void)index.AppendString(s);
  Rng rng(3);
  for (auto _ : state) {
    size_t offset = rng.Below(s.size() - 64);
    benchmark::DoNotOptimize(
        index.Contains(std::string_view(s).substr(offset, 64)));
  }
}
BENCHMARK(BM_SpineCompactContains);

void BM_SuffixTreeContains(benchmark::State& state) {
  std::string s = MakeGenome(1 << 18);
  SuffixTree tree(Alphabet::Dna());
  (void)tree.AppendString(s);
  Rng rng(3);
  for (auto _ : state) {
    size_t offset = rng.Below(s.size() - 64);
    benchmark::DoNotOptimize(
        tree.Contains(std::string_view(s).substr(offset, 64)));
  }
}
BENCHMARK(BM_SuffixTreeContains);

void BM_SpineCompactFindAll(benchmark::State& state) {
  std::string s = MakeGenome(1 << 18);
  CompactSpineIndex index(Alphabet::Dna());
  (void)index.AppendString(s);
  Rng rng(5);
  for (auto _ : state) {
    size_t offset = rng.Below(s.size() - 16);
    benchmark::DoNotOptimize(
        index.FindAll(std::string_view(s).substr(offset, 12)));
  }
}
BENCHMARK(BM_SpineCompactFindAll);

void BM_SuffixTreeFindAll(benchmark::State& state) {
  std::string s = MakeGenome(1 << 18);
  SuffixTree tree(Alphabet::Dna());
  (void)tree.AppendString(s);
  Rng rng(5);
  for (auto _ : state) {
    size_t offset = rng.Below(s.size() - 16);
    benchmark::DoNotOptimize(
        tree.FindAll(std::string_view(s).substr(offset, 12)));
  }
}
BENCHMARK(BM_SuffixTreeFindAll);

}  // namespace
}  // namespace spine
