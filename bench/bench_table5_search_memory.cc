// Reproduces Table 5 ("Substring Matching Times, In Memory"): time to
// find all maximal matching substrings (including all repetitions)
// between genome pairs, SPINE vs suffix tree. The paper reports SPINE
// ~30% faster thanks to its set-based suffix processing.
//
// Like the paper we match *unrelated* genomes (cross-species pairs), so
// the cost is dominated by mismatch-driven suffix shrinking — exactly
// where SPINE's link chains beat suffix links. A related-strain row
// (mutated copy) is added to exercise the all-occurrences machinery too.

#include <cstdio>
#include <string>

#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "core/matcher.h"
#include "seq/datasets.h"
#include "seq/generator.h"
#include "suffix_tree/st_matcher.h"
#include "suffix_tree/suffix_tree.h"

namespace spine::bench {
namespace {

constexpr uint32_t kMinMatchLen = 20;

struct Pair {
  const char* data;
  const char* query;
};

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Table 5",
              "all maximal matching substrings (threshold 20), ST vs SPINE",
              scale);

  const Pair pairs[] = {{"ECO", "CEL"},
                        {"CEL", "HC21"},
                        {"HC21", "CEL"},
                        {"HC21", "HC19"},
                        {"HC19", "HC21"}};

  TablePrinter table({"Data Seq", "Query Seq", "ST secs", "SPINE secs",
                      "SPINE/ST", "Matches"});
  for (const Pair& pair : pairs) {
    std::string data =
        seq::MakeDataset(seq::DatasetByName(pair.data), scale);
    std::string query =
        seq::MakeDataset(seq::DatasetByName(pair.query), scale);

    SuffixTree tree(Alphabet::Dna());
    SPINE_CHECK(tree.AppendString(data).ok());
    CompactSpineIndex index(Alphabet::Dna());
    SPINE_CHECK(index.AppendString(data).ok());

    WallTimer st_timer;
    auto st_matches = GenericStFindMaximalMatches(tree, query, kMinMatchLen,
                                                  nullptr);
    auto st_occurrences =
        CollectAllOccurrences(tree, query, st_matches);
    double st_secs = st_timer.ElapsedSeconds();

    WallTimer spine_timer;
    auto spine_matches =
        GenericFindMaximalMatches(index, query, kMinMatchLen);
    auto spine_occurrences =
        GenericCollectAllOccurrences(index, spine_matches);
    double spine_secs = spine_timer.ElapsedSeconds();

    SPINE_CHECK(st_matches.size() == spine_matches.size());
    table.AddRow({pair.data, pair.query, FormatDouble(st_secs, 3),
                  FormatDouble(spine_secs, 3),
                  FormatDouble(st_secs > 0 ? spine_secs / st_secs : 0.0),
                  FormatCount(spine_matches.size())});
  }

  // Extension row: related strains (divergent copy) — matches abound and
  // the deferred all-occurrences scan does real work.
  {
    std::string data = seq::MakeDataset(seq::DatasetByName("CEL"), scale);
    seq::MutateOptions mutate;
    mutate.seed = 99;
    std::string query = seq::MutateCopy(Alphabet::Dna(), data, mutate);

    SuffixTree tree(Alphabet::Dna());
    SPINE_CHECK(tree.AppendString(data).ok());
    CompactSpineIndex index(Alphabet::Dna());
    SPINE_CHECK(index.AppendString(data).ok());

    WallTimer st_timer;
    auto st_matches =
        GenericStFindMaximalMatches(tree, query, kMinMatchLen, nullptr);
    auto st_occurrences = CollectAllOccurrences(tree, query, st_matches);
    double st_secs = st_timer.ElapsedSeconds();

    WallTimer spine_timer;
    auto spine_matches =
        GenericFindMaximalMatches(index, query, kMinMatchLen);
    auto spine_occurrences =
        GenericCollectAllOccurrences(index, spine_matches);
    double spine_secs = spine_timer.ElapsedSeconds();

    table.AddRow({"CEL", "CEL-strain", FormatDouble(st_secs, 3),
                  FormatDouble(spine_secs, 3),
                  FormatDouble(st_secs > 0 ? spine_secs / st_secs : 0.0),
                  FormatCount(spine_matches.size())});
  }
  table.Print();
  std::printf("\npaper (full scale, secs): ECO/CEL 20 vs 16; CEL/HC21 45 vs "
              "31; HC21/CEL 26 vs 17;\nHC21/HC19 83 vs 54; HC19/HC21 - vs 30 "
              "(ST out of memory) — SPINE ~30%% faster.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
