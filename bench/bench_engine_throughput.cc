// Batch query engine throughput: queries/sec at 1/2/4/8 worker threads
// over the synthetic DNA corpus, for a heterogeneous workload (exact
// FindAll, Contains, maximal-match, matching statistics). Verifies that
// every concurrent run returns answers byte-identical to sequential
// execution, then reports the scaling table and the effect of the
// result cache on a skewed (hot-pattern) workload.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "core/adapters.h"
#include "core/query.h"
#include "engine/query_engine.h"
#include "seq/datasets.h"
#include "seq/generator.h"

namespace spine::bench {
namespace {

constexpr uint64_t kCorpusLen = 4'000'000;
constexpr size_t kQueries = 8'000;

std::vector<Query> MakeWorkload(const std::string& corpus) {
  std::vector<Query> queries;
  queries.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    const size_t offset = (i * 786'433) % (corpus.size() - 1024);
    switch (i % 8) {
      case 0:
      case 1:
      case 2:
        queries.push_back(
            Query::FindAll(corpus.substr(offset, 16 + i % 24)));
        break;
      case 3:
      case 4: {
        // Mutated slice: mostly misses partway through the walk.
        std::string pattern = corpus.substr(offset, 24);
        pattern[12] = pattern[12] == 'A' ? 'C' : 'A';
        queries.push_back(Query::Contains(pattern));
        break;
      }
      case 5:
      case 6:
        queries.push_back(
            Query::MaximalMatches(corpus.substr(offset, 400), 16));
        break;
      default:
        queries.push_back(
            Query::MatchingStats(corpus.substr(offset, 256)));
        break;
    }
  }
  return queries;
}

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Engine", "batch query throughput vs worker threads", scale);

  seq::GeneratorOptions gen;
  gen.length = static_cast<uint64_t>(kCorpusLen * scale);
  gen.seed = 11;
  const std::string corpus = seq::GenerateSequence(Alphabet::Dna(), gen);
  CompactSpineIndex index(Alphabet::Dna());
  SPINE_CHECK(index.AppendString(corpus).ok());
  core::CompactSpineAdapter adapter(index);

  const std::vector<Query> queries = MakeWorkload(corpus);

  // Sequential reference answers.
  WallTimer seq_timer;
  std::vector<QueryResult> reference;
  reference.reserve(queries.size());
  for (const Query& q : queries) {
    reference.push_back(ExecuteQuery(index, q));
  }
  const double seq_secs = seq_timer.ElapsedSeconds();

  BenchReport report("engine_throughput", scale);
  report.AddMetric("corpus_chars", static_cast<uint64_t>(corpus.size()));
  report.AddMetric("queries", static_cast<uint64_t>(queries.size()));
  report.AddMetric("seq_qps", queries.size() / seq_secs);

  TablePrinter table(
      {"threads", "secs", "queries/sec", "speedup", "identical"});
  table.AddRow({"seq", FormatDouble(seq_secs, 3),
                FormatCount(static_cast<uint64_t>(queries.size() / seq_secs)),
                "1.00", "-"});
  double one_thread_secs = seq_secs;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    engine::QueryEngine engine({.threads = threads, .cache_bytes = 0});
    engine::BatchStats stats;
    WallTimer timer;
    std::vector<QueryResult> results =
        engine.ExecuteBatch(adapter, queries, &stats);
    const double secs = timer.ElapsedSeconds();
    if (threads == 1) one_thread_secs = secs;

    bool identical = results.size() == reference.size();
    for (size_t i = 0; identical && i < results.size(); ++i) {
      identical = results[i].SameAnswer(reference[i]);
    }
    SPINE_CHECK(identical);
    table.AddRow({std::to_string(threads), FormatDouble(secs, 3),
                  FormatCount(static_cast<uint64_t>(queries.size() / secs)),
                  FormatDouble(one_thread_secs / secs, 2),
                  identical ? "yes" : "NO"});
    report.AddMetric("qps_t" + std::to_string(threads),
                     queries.size() / secs);
  }
  table.Print();

  // Skewed workload: 95% of requests repeat 64 hot patterns.
  std::vector<Query> skewed;
  skewed.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    skewed.push_back(i % 20 == 0 ? queries[i] : queries[i % 64]);
  }
  engine::QueryEngine cached({.threads = 8, .cache_bytes = 64 << 20});
  engine::BatchStats cold, warm;
  WallTimer cold_timer;
  cached.ExecuteBatch(adapter, skewed, &cold);
  const double cold_secs = cold_timer.ElapsedSeconds();
  WallTimer warm_timer;
  cached.ExecuteBatch(adapter, skewed, &warm);
  const double warm_secs = warm_timer.ElapsedSeconds();
  std::printf(
      "\nskewed workload, 8 threads + 64 MiB cache: cold %.3f s "
      "(%llu/%zu hits), warm %.3f s (%llu/%zu hits)\n",
      cold_secs, static_cast<unsigned long long>(cold.cache_hits),
      skewed.size(), warm_secs,
      static_cast<unsigned long long>(warm.cache_hits), skewed.size());
  std::printf(
      "\ntarget: >= 3x queries/sec at 8 threads vs 1 thread, identical "
      "answers.\n");

  report.AddMetric("skewed_cold_secs", cold_secs);
  report.AddMetric("skewed_warm_secs", warm_secs);
  report.AddMetric("skewed_cold_cache_hits", cold.cache_hits);
  report.AddMetric("skewed_warm_cache_hits", warm.cache_hits);
  SPINE_CHECK(report.Write().ok());
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
