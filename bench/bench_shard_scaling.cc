// Sharded-family scaling: parallel build time and query throughput of
// shard::ShardedIndex at K = 1/2/4/8 shards over the synthetic DNA
// corpus, against the monolithic compact index as the correctness
// reference. Every sharded answer must be byte-identical to the
// monolithic one; the table reports build speedup from the parallel
// per-shard construction and the query-side cost of fan-out + merge.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "core/query.h"
#include "seq/datasets.h"
#include "seq/generator.h"
#include "shard/sharded_index.h"

namespace spine::bench {
namespace {

constexpr uint64_t kCorpusLen = 2'000'000;
constexpr size_t kQueries = 2'000;

std::vector<Query> MakeWorkload(const std::string& corpus) {
  std::vector<Query> queries;
  queries.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    const size_t offset = (i * 786'433) % (corpus.size() - 1024);
    switch (i % 8) {
      case 0:
      case 1:
      case 2:
        queries.push_back(Query::FindAll(corpus.substr(offset, 16 + i % 24)));
        break;
      case 3:
      case 4: {
        std::string pattern = corpus.substr(offset, 24);
        pattern[12] = pattern[12] == 'A' ? 'C' : 'A';
        queries.push_back(Query::Contains(pattern));
        break;
      }
      case 5:
      case 6:
        queries.push_back(
            Query::MaximalMatches(corpus.substr(offset, 400), 16));
        break;
      default:
        queries.push_back(Query::MatchingStats(corpus.substr(offset, 256)));
        break;
    }
  }
  return queries;
}

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Shard", "family build + query scaling vs shard count", scale);

  seq::GeneratorOptions gen;
  gen.length = static_cast<uint64_t>(kCorpusLen * scale);
  gen.seed = 13;
  const std::string corpus = seq::GenerateSequence(Alphabet::Dna(), gen);

  WallTimer mono_timer;
  CompactSpineIndex mono(Alphabet::Dna());
  SPINE_CHECK(mono.AppendString(corpus).ok());
  const double mono_build_secs = mono_timer.ElapsedSeconds();

  const std::vector<Query> queries = MakeWorkload(corpus);
  std::vector<QueryResult> reference;
  reference.reserve(queries.size());
  WallTimer ref_timer;
  for (const Query& q : queries) {
    reference.push_back(ExecuteQuery(mono, q));
  }
  const double mono_query_secs = ref_timer.ElapsedSeconds();

  BenchReport report("shard_scaling", scale);
  report.AddMetric("corpus_chars", static_cast<uint64_t>(corpus.size()));
  report.AddMetric("queries", static_cast<uint64_t>(queries.size()));
  report.AddMetric("mono_build_secs", mono_build_secs);
  report.AddMetric("mono_qps", queries.size() / mono_query_secs);

  TablePrinter table({"shards", "build secs", "build speedup", "queries/sec",
                      "vs mono", "identical"});
  table.AddRow({"mono", FormatDouble(mono_build_secs, 3), "-",
                FormatCount(
                    static_cast<uint64_t>(queries.size() / mono_query_secs)),
                "1.00", "-"});
  double k1_build_secs = mono_build_secs;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    WallTimer build_timer;
    auto family = shard::ShardedIndex::Build(
        Alphabet::Dna(), corpus,
        {.shards = shards, .max_pattern = shard::kDefaultMaxPattern});
    SPINE_CHECK(family.ok());
    const double build_secs = build_timer.ElapsedSeconds();
    if (shards == 1) k1_build_secs = build_secs;

    WallTimer query_timer;
    bool identical = true;
    for (size_t i = 0; i < queries.size(); ++i) {
      identical =
          identical && (*family)->Execute(queries[i]).SameAnswer(reference[i]);
    }
    const double query_secs = query_timer.ElapsedSeconds();
    SPINE_CHECK(identical);

    table.AddRow(
        {std::to_string(shards), FormatDouble(build_secs, 3),
         FormatDouble(k1_build_secs / build_secs, 2),
         FormatCount(static_cast<uint64_t>(queries.size() / query_secs)),
         FormatDouble(mono_query_secs / query_secs, 2),
         identical ? "yes" : "NO"});
    report.AddMetric("build_secs_k" + std::to_string(shards), build_secs);
    report.AddMetric("qps_k" + std::to_string(shards),
                     queries.size() / query_secs);
  }
  table.Print();

  std::printf(
      "\ntarget: parallel build speedup grows with K; per-query fan-out "
      "overhead stays within ~K of monolithic; answers identical.\n");
  SPINE_CHECK(report.Write().ok());
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
