// Reproduces the Section 6.1 remark: "the same performance differences
// held even when the query strings were much smaller (for example, of
// length 1K)". Streams many 1 K query slices against both indexes and
// compares per-query times and nodes checked.

#include <cstdio>
#include <string>

#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "core/matcher.h"
#include "seq/datasets.h"
#include "suffix_tree/st_matcher.h"
#include "suffix_tree/suffix_tree.h"

namespace spine::bench {
namespace {

constexpr uint32_t kQueryLen = 1000;
constexpr uint32_t kQueries = 200;
constexpr uint32_t kMinMatchLen = 12;

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Section 6.1", "1 K query slices, ST vs SPINE", scale);

  std::string data = seq::MakeDataset(seq::DatasetByName("CEL"), scale);
  std::string source = seq::MakeDataset(seq::DatasetByName("ECO"), scale);
  SPINE_CHECK(source.size() > kQueryLen * 2);

  SuffixTree tree(Alphabet::Dna());
  SPINE_CHECK(tree.AppendString(data).ok());
  CompactSpineIndex index(Alphabet::Dna());
  SPINE_CHECK(index.AppendString(data).ok());

  SearchStats st_stats, spine_stats;
  WallTimer st_timer;
  for (uint32_t q = 0; q < kQueries; ++q) {
    size_t offset = (q * 4099) % (source.size() - kQueryLen);
    GenericStFindMaximalMatches(
        tree, std::string_view(source).substr(offset, kQueryLen),
        kMinMatchLen, &st_stats);
  }
  double st_secs = st_timer.ElapsedSeconds();

  WallTimer spine_timer;
  for (uint32_t q = 0; q < kQueries; ++q) {
    size_t offset = (q * 4099) % (source.size() - kQueryLen);
    GenericFindMaximalMatches(
        index, std::string_view(source).substr(offset, kQueryLen),
        kMinMatchLen, &spine_stats);
  }
  double spine_secs = spine_timer.ElapsedSeconds();

  TablePrinter table({"Index", "total secs", "us/query", "nodes checked"});
  table.AddRow({"ST", FormatDouble(st_secs, 4),
                FormatDouble(st_secs * 1e6 / kQueries, 1),
                FormatCount(st_stats.nodes_checked +
                            st_stats.link_traversals + st_stats.chain_hops)});
  table.AddRow({"SPINE", FormatDouble(spine_secs, 4),
                FormatDouble(spine_secs * 1e6 / kQueries, 1),
                FormatCount(spine_stats.nodes_checked +
                            spine_stats.link_traversals +
                            spine_stats.chain_hops)});
  table.Print();
  std::printf("\npaper: the SPINE-vs-ST differences of Tables 5/6 persist "
              "for 1 K queries.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
