// Reproduces Table 4 ("Rib Distribution across Nodes"): the percentage
// of nodes carrying 1, 2, 3 or 4 forward edges. The paper's observation:
// only ~28-33% of nodes have any downstream edge, with a steep decay in
// fan-out — the basis for the RT1..RT4 split of the optimized layout.

#include <cstdio>

#include "bench_util/table.h"
#include "common/check.h"
#include "compact/compact_spine.h"
#include "seq/datasets.h"

namespace spine::bench {
namespace {

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Table 4", "rib fan-out distribution across nodes", scale);

  // The paper's counting: a node's extrib is one more forward edge, so
  // the DNA classes run 1..4 (3 ribs + extrib).
  TablePrinter table({"Genome", "Length", "1", "2", "3", "4", ">4",
                      "Total with edges"});
  for (const seq::DatasetSpec& spec : seq::AllDatasets()) {
    if (spec.is_protein) continue;
    std::string s = seq::MakeDataset(spec, scale);
    CompactSpineIndex index(seq::DatasetAlphabet(spec));
    Status status = index.AppendString(s);
    SPINE_CHECK_MSG(status.ok(), status.ToString().c_str());
    auto counts = index.FanoutCountsWithExtribs();
    double n = static_cast<double>(index.size() + 1);
    double total = 0;
    std::vector<std::string> row = {spec.name, FormatMega(s.size())};
    for (int k = 0; k < 4; ++k) {
      double fraction = static_cast<double>(counts[k]) / n;
      total += fraction;
      row.push_back(FormatPercent(fraction));
    }
    double beyond =
        static_cast<double>(counts[4] + counts[5]) / n;  // ribs > 3
    total += beyond;
    row.push_back(FormatPercent(beyond));
    row.push_back(FormatPercent(total));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\npaper (full-scale genomes): 13-15%% / 7-9%% / 5-6%% / 3-4%%, "
              "28-33%% total with edges.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
