// Related-work bench (Section 7): SPINE vs the MRS-style filter index
// on approximate queries. The paper: MRS keeps a very small approximate
// index and filters first, "while MRS gives only approximate answers,
// both SPINE and ST provide exact answers. Further, the performance
// improvement through complete indexes is typically substantially more,
// albeit at the cost of increased resource consumption."

#include <cstdio>
#include <string>

#include "align/approximate.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "mrs/frequency_filter.h"
#include "seq/datasets.h"
#include "seq/generator.h"

namespace spine::bench {
namespace {

constexpr uint32_t kQueries = 30;
constexpr uint32_t kPatternLen = 40;

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Section 7", "SPINE vs MRS-style filter on approximate queries",
              scale);

  std::string text = seq::MakeDataset(seq::DatasetByName("ECO"), scale);

  CompactSpineIndex spine(Alphabet::Dna());
  SPINE_CHECK(spine.AppendString(text).ok());
  auto filter = mrs::FrequencyFilterIndex::Build(Alphabet::Dna(), text);
  SPINE_CHECK(filter.ok());

  std::printf("index sizes: SPINE %s (self-contained) vs MRS sketch %s + "
              "retained text %s\n\n",
              FormatBytes(spine.LogicalBytes().Total()).c_str(),
              FormatBytes(filter->SketchBytes()).c_str(),
              FormatBytes(text.size()).c_str());

  TablePrinter table({"max edits", "SPINE s/query", "MRS s/query",
                      "MRS/SPINE", "frames pruned", "starts verified",
                      "hits (sanity)"});
  for (uint32_t k : {0u, 1u, 2u}) {
    // Queries: pattern slices with k planted substitutions.
    std::vector<std::string> patterns;
    for (uint32_t q = 0; q < kQueries; ++q) {
      size_t offset = (q * 9973) % (text.size() - kPatternLen);
      std::string pattern = text.substr(offset, kPatternLen);
      for (uint32_t e = 0; e < k; ++e) {
        pattern[(e * 13 + 3) % kPatternLen] = "ACGT"[(q + e) % 4];
      }
      patterns.push_back(std::move(pattern));
    }

    WallTimer spine_timer;
    uint64_t spine_hits = 0;
    for (const std::string& pattern : patterns) {
      spine_hits += align::FindApproximate(spine, pattern, k).size();
    }
    double spine_secs = spine_timer.ElapsedSeconds();

    WallTimer mrs_timer;
    uint64_t mrs_hits = 0, pruned_total = 0, verified_total = 0;
    for (const std::string& pattern : patterns) {
      uint64_t pruned = 0, verified = 0;
      mrs_hits += filter->FindApproximate(pattern, k, &pruned, &verified)
                      .size();
      pruned_total += pruned;
      verified_total += verified;
    }
    double mrs_secs = mrs_timer.ElapsedSeconds();

    SPINE_CHECK(spine_hits == mrs_hits);  // both are exact on this task
    table.AddRow({std::to_string(k),
                  FormatDouble(spine_secs / kQueries, 5),
                  FormatDouble(mrs_secs / kQueries, 5),
                  FormatDouble(mrs_secs / spine_secs, 1) + "x",
                  FormatCount(pruned_total / kQueries),
                  FormatCount(verified_total / kQueries),
                  FormatCount(spine_hits)});
  }
  table.Print();
  std::printf("\npaper's point ✓ when the complete index wins by a large "
              "factor: the filter prunes\nwhole frames but still verifies "
              "every surviving start position against the text,\nwhile "
              "SPINE's exact seeds jump straight to candidate positions. "
              "The filter's\nsketch is ~100x smaller — the resource/speed "
              "trade-off of Section 7.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
