// Reproduces Table 6 ("Number of Nodes Checked"): instrumented counters
// of how many index nodes each matcher examines while finding all
// maximal matching substrings. The paper's explanation (Section 4.1):
// a suffix-tree mismatch walks suffix links one suffix at a time, while
// SPINE's links drop whole *sets* of suffixes per hop, so SPINE checks
// far fewer nodes.

#include <cstdio>
#include <string>

#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "compact/compact_spine.h"
#include "core/matcher.h"
#include "seq/datasets.h"
#include "suffix_tree/st_matcher.h"
#include "suffix_tree/suffix_tree.h"

namespace spine::bench {
namespace {

constexpr uint32_t kMinMatchLen = 20;

struct Pair {
  const char* data;
  const char* query;
};

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Table 6", "number of nodes checked during matching (1000s)",
              scale);

  const Pair pairs[] = {{"CEL", "ECO"}, {"HC21", "ECO"}, {"HC21", "CEL"}};

  BenchReport report("table6_nodes_checked", scale);
  TablePrinter table({"Data Seq", "Query Seq", "ST (1000s)", "SPINE (1000s)",
                      "SPINE/ST"});
  for (const Pair& pair : pairs) {
    std::string data = seq::MakeDataset(seq::DatasetByName(pair.data), scale);
    std::string query =
        seq::MakeDataset(seq::DatasetByName(pair.query), scale);

    SuffixTree tree(Alphabet::Dna());
    SPINE_CHECK(tree.AppendString(data).ok());
    CompactSpineIndex index(Alphabet::Dna());
    SPINE_CHECK(index.AppendString(data).ok());

    SearchStats st_stats;
    GenericStFindMaximalMatches(tree, query, kMinMatchLen, &st_stats);
    SearchStats spine_stats;
    GenericFindMaximalMatches(index, query, kMinMatchLen, &spine_stats);

    uint64_t st_checked = st_stats.nodes_checked + st_stats.link_traversals +
                          st_stats.chain_hops;
    uint64_t spine_checked = spine_stats.nodes_checked +
                             spine_stats.link_traversals +
                             spine_stats.chain_hops;
    table.AddRow({pair.data, pair.query, FormatCount(st_checked / 1000),
                  FormatCount(spine_checked / 1000),
                  FormatDouble(static_cast<double>(spine_checked) /
                               static_cast<double>(st_checked))});
    const std::string key =
        std::string(pair.data) + "_" + pair.query;
    report.AddMetric("st_checked_" + key, st_checked);
    report.AddMetric("spine_checked_" + key, spine_checked);
  }
  table.Print();
  SPINE_CHECK(report.Write().ok());
  std::printf("\npaper (full scale, 1000s of nodes): CEL/ECO 3,515 vs 2,119; "
              "HC21/ECO 3,514 vs 2,163;\nHC21/CEL 15,077 vs 8,701 — SPINE "
              "checks ~40%% fewer nodes.\ncounting: every edge lookup, "
              "suffix/link hop and extrib-chain hop is one check.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
