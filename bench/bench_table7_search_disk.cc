// Reproduces Table 7 ("Substring Matching, On Disk"): maximal-match
// search with disk-resident indexes behind a small buffer pool. The
// paper reports SPINE ~2x faster (≈50% speedup) over MUMmer's suffix
// tree. We report page misses during the search and modeled times.

#include <cstdio>
#include <string>

#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "core/matcher.h"
#include "seq/datasets.h"
#include "storage/disk_model.h"
#include "storage/disk_spine.h"
#include "storage/disk_suffix_tree.h"
#include "suffix_tree/st_matcher.h"

namespace spine::bench {
namespace {

constexpr uint32_t kMinMatchLen = 20;

struct Pair {
  const char* data;
  const char* query;
};

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Table 7", "on-disk maximal matching, ST vs SPINE", scale);
  const uint32_t pool_frames = 1024;  // 4 MiB: search must page
  storage::DiskCostModel model;
  std::printf("buffer pool: %u frames (%s)\n\n", pool_frames,
              FormatBytes(pool_frames * 4096ull).c_str());

  const Pair pairs[] = {{"CEL", "ECO"}, {"HC21", "ECO"}, {"HC21", "CEL"}};

  BenchReport report("table7_search_disk", scale);
  TablePrinter table({"Data Seq", "Query Seq", "ST misses", "SPINE misses",
                      "ST modeled s", "SPINE modeled s", "Speedup"});
  for (const Pair& pair : pairs) {
    std::string data = seq::MakeDataset(seq::DatasetByName(pair.data), scale);
    std::string query =
        seq::MakeDataset(seq::DatasetByName(pair.query), scale);
    std::string dir = ::getenv("TMPDIR") ? ::getenv("TMPDIR") : "/tmp";

    storage::DiskSuffixTree::Options st_options;
    st_options.pool_frames = pool_frames;
    auto tree = storage::DiskSuffixTree::Create(
        Alphabet::Dna(), dir + "/t7_st_" + pair.data + ".idx", st_options);
    SPINE_CHECK(tree.ok());
    SPINE_CHECK((*tree)->AppendString(data).ok());
    (*tree)->ResetIoStats();
    GenericStFindMaximalMatches(**tree, query, kMinMatchLen, nullptr);
    storage::IoStats st_io = (*tree)->io_stats();

    storage::DiskSpine::Options sp_options;
    sp_options.pool_frames = pool_frames;
    auto index = storage::DiskSpine::Create(
        Alphabet::Dna(), dir + "/t7_spine_" + pair.data + ".idx", sp_options);
    SPINE_CHECK(index.ok());
    SPINE_CHECK((*index)->AppendString(data).ok());
    (*index)->ResetIoStats();
    GenericFindMaximalMatches(**index, query, kMinMatchLen);
    storage::IoStats spine_io = (*index)->io_stats();

    double st_secs = model.ModeledSeconds(st_io);
    double spine_secs = model.ModeledSeconds(spine_io);
    double speedup = st_secs > 0 ? (st_secs - spine_secs) / st_secs : 0;
    table.AddRow({pair.data, pair.query, FormatCount(st_io.misses),
                  FormatCount(spine_io.misses), FormatDouble(st_secs),
                  FormatDouble(spine_secs), FormatPercent(speedup)});
    const std::string key = std::string(pair.data) + "_" + pair.query;
    report.AddMetric("st_misses_" + key, st_io.misses);
    report.AddMetric("spine_misses_" + key, spine_io.misses);
    report.AddMetric("speedup_" + key, speedup);
  }
  table.Print();
  SPINE_CHECK(report.Write().ok());
  std::printf("\npaper (full scale, hours): CEL/ECO 0.98 vs 0.47 (52%%); "
              "HC21/ECO 0.97 vs 0.48 (50%%);\nHC21/CEL 4.30 vs 2.02 (53%%); "
              "HC19/HC21 7.92 vs 3.87 (51%%) — SPINE ~2x faster.\n");
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
