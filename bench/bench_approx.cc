// Approximate-query throughput: queries/sec of the kMismatch and
// kEditDistance kinds versus error budget and pattern length, with the
// planner's seed-length choice logged per point. The sweep is the
// evidence behind the seed-and-extend default: seeded points should
// beat the O(n*m) scan by orders of magnitude wherever the planner
// chooses seeds, and the points where it falls back to the scan (short
// patterns, fat budgets) show the crossover the cost model encodes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/json_report.h"
#include "bench_util/table.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "core/query.h"
#include "plan/planner.h"
#include "seq/datasets.h"
#include "seq/generator.h"

namespace spine::bench {
namespace {

constexpr uint64_t kBaseCorpus = 1ull << 20;  // chars, pre-scale
constexpr uint32_t kQueriesPerPoint = 24;
constexpr uint32_t kPatternLens[] = {8, 32, 128};
constexpr uint32_t kSigmaDna = 4;

// A corpus slice with exactly `budget` planted errors, so every query
// has at least one inexact occurrence to find and the verifier does
// representative work.
std::string PerturbedSlice(const std::string& corpus, Rng& rng, uint32_t m,
                           uint32_t budget, bool edits) {
  const uint32_t start =
      static_cast<uint32_t>(rng.Below(corpus.size() - m - budget - 1));
  std::string pattern = corpus.substr(start, m);
  for (uint32_t e = 0; e < budget; ++e) {
    const uint32_t at = static_cast<uint32_t>(rng.Below(pattern.size()));
    switch (edits ? rng.Below(3) : 0u) {
      case 0: pattern[at] = "ACGT"[rng.Below(4)]; break;
      case 1: pattern.insert(at, 1, "ACGT"[rng.Below(4)]); break;
      default: pattern.erase(at, 1); break;
    }
  }
  return pattern;
}

struct Point {
  double qps = 0;
  uint64_t hits = 0;
};

Point RunPoint(const CompactSpineIndex& index, const std::string& corpus,
               bool edits, uint32_t m, uint32_t budget) {
  Rng rng(1000 * m + 10 * budget + (edits ? 1 : 0));
  std::vector<Query> queries;
  queries.reserve(kQueriesPerPoint);
  for (uint32_t q = 0; q < kQueriesPerPoint; ++q) {
    std::string pattern = PerturbedSlice(corpus, rng, m, budget, edits);
    queries.push_back(edits ? Query::EditDistance(std::move(pattern), budget)
                            : Query::Mismatch(std::move(pattern), budget));
  }
  Point point;
  WallTimer timer;
  for (const Query& query : queries) {
    QueryResult result = ExecuteQuery(index, query);
    SPINE_CHECK(result.ok());
    point.hits += result.hits.size();
  }
  point.qps = static_cast<double>(kQueriesPerPoint) / timer.ElapsedSeconds();
  return point;
}

void Sweep(const CompactSpineIndex& index, const std::string& corpus,
           bool edits, uint32_t max_budget, BenchReport* report) {
  const char* kind = edits ? "edit" : "mismatch";
  std::printf("\n%s (budget x pattern length):\n", kind);
  TablePrinter table(
      {"budget", "len", "plan", "seed len", "queries/s", "hits/query"});
  for (uint32_t budget = 0; budget <= max_budget; ++budget) {
    for (const uint32_t m : kPatternLens) {
      if (budget >= m) continue;  // degenerate by contract
      const plan::ApproxPlan plan = plan::PlanApprox(
          corpus.size(), kSigmaDna, m, budget, /*backend_seedable=*/true);
      const Point point = RunPoint(index, corpus, edits, m, budget);
      table.AddRow({std::to_string(budget), std::to_string(m),
                    plan.use_seeds ? "seeds" : "scan",
                    std::to_string(plan.seed_len), FormatDouble(point.qps, 1),
                    FormatDouble(static_cast<double>(point.hits) /
                                     kQueriesPerPoint,
                                 2)});
      const std::string key =
          std::string(kind) + "_b" + std::to_string(budget) + "_len" +
          std::to_string(m);
      report->AddMetric(key + "_qps", point.qps);
      report->AddMetric(key + "_seed_len",
                        static_cast<uint64_t>(plan.seed_len));
      report->AddMetric(key + "_seeded",
                        static_cast<uint64_t>(plan.use_seeds ? 1 : 0));
    }
  }
  table.Print();
}

void Run() {
  const double scale = seq::BenchScaleFromEnv();
  PrintBanner("Approx", "k-mismatch / bounded-edit throughput", scale);

  seq::GeneratorOptions gen;
  gen.length =
      static_cast<uint64_t>(static_cast<double>(kBaseCorpus) * scale);
  gen.seed = 71;
  const std::string corpus = seq::GenerateSequence(Alphabet::Dna(), gen);
  CompactSpineIndex index(Alphabet::Dna());
  SPINE_CHECK(index.AppendString(corpus).ok());

  BenchReport report("approx", scale);
  report.AddInfo("corpus", "generated DNA");
  report.AddMetric("corpus_chars", static_cast<uint64_t>(corpus.size()));
  Sweep(index, corpus, /*edits=*/false, /*max_budget=*/4, &report);
  Sweep(index, corpus, /*edits=*/true, /*max_budget=*/3, &report);

  const Status status = report.Write();
  SPINE_CHECK(status.ok());
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
