// Ablation for the Section 2.7 prefix-partitioning property: "given a
// SPINE index for a string, the index for a prefix of this string is
// simply the corresponding initial fragment of the index". A suffix
// tree has no such property — nodes high in the tree may be created
// late — so serving a prefix workload requires a rebuild. This bench
// measures obtaining a usable half-string index from a full index:
// SPINE pays a truncation-validation scan; ST pays a reconstruction.

#include <cstdio>
#include <string>

#include "bench_util/table.h"
#include "common/check.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "seq/datasets.h"
#include "suffix_tree/suffix_tree.h"

namespace spine::bench {
namespace {

void Run() {
  double scale = seq::BenchScaleFromEnv();
  PrintBanner("Ablation", "prefix-partitioning (Section 2.7)", scale);

  std::string s = seq::MakeDataset(seq::DatasetByName("CEL"), scale);
  const uint32_t half = static_cast<uint32_t>(s.size() / 2);

  CompactSpineIndex full(Alphabet::Dna());
  SPINE_CHECK(full.AppendString(s).ok());

  // SPINE: the prefix index is the initial fragment; producing it means
  // scanning nodes <= half once (no edge rebuilding). We emulate the
  // consumer by verifying the fragment against a freshly built prefix
  // index (the verification IS the expensive part; the fragment itself
  // is free).
  WallTimer spine_timer;
  uint64_t checksum = 0;
  for (NodeId i = 1; i <= half; ++i) {
    checksum += full.LinkDest(i) + full.LinkLel(i);
  }
  double spine_secs = spine_timer.ElapsedSeconds();

  // ST: no prefix property; rebuild on the prefix.
  WallTimer st_timer;
  SuffixTree tree(Alphabet::Dna());
  SPINE_CHECK(tree.AppendString(std::string_view(s).substr(0, half)).ok());
  double st_secs = st_timer.ElapsedSeconds();

  // Cross-check the property: fragment == independently built prefix.
  CompactSpineIndex prefix(Alphabet::Dna());
  SPINE_CHECK(prefix.AppendString(std::string_view(s).substr(0, half)).ok());
  for (NodeId i = 1; i <= half; ++i) {
    SPINE_CHECK(prefix.LinkDest(i) == full.LinkDest(i));
    SPINE_CHECK(prefix.LinkLel(i) == full.LinkLel(i));
  }

  TablePrinter table({"Index", "obtain half-string index", "secs"});
  table.AddRow({"SPINE", "truncate (scan fragment)",
                FormatDouble(spine_secs, 4)});
  table.AddRow({"ST", "rebuild from scratch", FormatDouble(st_secs, 4)});
  table.Print();
  std::printf("\n(checksum %llu; fragment verified identical to an "
              "independently built prefix\nindex — links, LELs, ribs and "
              "extribs restricted to the prefix)\n",
              static_cast<unsigned long long>(checksum));
}

}  // namespace
}  // namespace spine::bench

int main() {
  spine::bench::Run();
  return 0;
}
