// Short-read mapping on a SPINE index: sample error-containing "reads"
// from a synthetic genome and map them back, exactly — via maximal
// matches — and approximately — via the k-mismatch DFS and the
// seed-and-extend pipeline. A miniature read mapper built entirely on
// the paper's structure.
//
//   $ ./examples/read_mapping [read_len] [reads]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "align/approximate.h"
#include "align/hamming.h"
#include "common/rng.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "seq/generator.h"

int main(int argc, char** argv) {
  using namespace spine;
  const uint32_t read_len =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 50;
  const uint32_t read_count =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 2000;

  seq::GeneratorOptions gen;
  gen.length = 500'000;
  gen.seed = 99;
  std::string genome = seq::GenerateSequence(Alphabet::Dna(), gen);

  CompactSpineIndex index(Alphabet::Dna());
  Status status = index.AppendString(genome);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("genome: %zu bp; reads: %u x %u bp with up to 2 errors\n",
              genome.size(), read_count, read_len);

  // Sample reads with 0-2 substitutions each.
  Rng rng(7);
  const char* letters = "ACGT";
  struct Read {
    std::string bases;
    uint32_t true_pos;
    uint32_t errors;
  };
  std::vector<Read> reads;
  for (uint32_t r = 0; r < read_count; ++r) {
    uint32_t pos =
        static_cast<uint32_t>(rng.Below(genome.size() - read_len));
    std::string bases = genome.substr(pos, read_len);
    uint32_t errors = static_cast<uint32_t>(rng.Below(3));
    for (uint32_t e = 0; e < errors; ++e) {
      bases[rng.Below(read_len)] = letters[rng.Below(4)];
    }
    reads.push_back({std::move(bases), pos, errors});
  }

  // Map with the Hamming DFS (budget 2 mismatches).
  WallTimer timer;
  uint32_t mapped = 0, correct = 0, multi = 0;
  for (const Read& read : reads) {
    auto hits = align::FindHammingMatches(index, read.bases, 2);
    if (hits.empty()) continue;
    ++mapped;
    if (hits.size() > 1) ++multi;
    for (const auto& hit : hits) {
      if (hit.data_pos == read.true_pos) {
        ++correct;
        break;
      }
    }
  }
  double secs = timer.ElapsedSeconds();
  std::printf("\nk-mismatch DFS (k=2): mapped %u/%u reads (%u multi-mapped) "
              "in %.2f s (%.0f us/read)\n",
              mapped, read_count, multi, secs,
              secs * 1e6 / read_count);
  std::printf("  origin recovered for %u reads (unmapped reads would "
              "indicate a bug: every\n  read is within 2 mismatches of its "
              "source window)\n",
              correct);
  if (mapped != read_count || correct != read_count) {
    std::fprintf(stderr, "mapping failure\n");
    return 1;
  }

  // The edit-distance pipeline handles indel-containing reads too.
  std::string indel_read = genome.substr(123'000, read_len);
  indel_read.erase(20, 2);  // 2-base deletion
  auto edit_hits = align::FindApproximate(index, indel_read, 3);
  std::printf("\nseed-and-extend (edits<=3) on a read with a 2 bp deletion: "
              "%zu hit(s)",
              edit_hits.size());
  for (size_t i = 0; i < edit_hits.size() && i < 3; ++i) {
    std::printf("  [pos %u, %u edits]", edit_hits[i].data_pos,
                edit_hits[i].edits);
  }
  std::printf("\n");
  return 0;
}
