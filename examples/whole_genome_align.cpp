// Whole-genome alignment on top of SPINE — the application the paper's
// introduction motivates: find maximal (optionally unique) matches
// between two genomes, chain the best collinear subset, and fill the
// gaps, producing coverage/identity statistics like a miniature MUMmer.
//
//   $ ./examples/whole_genome_align [min_anchor_len]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "align/aligner.h"
#include "common/timer.h"
#include "seq/generator.h"

int main(int argc, char** argv) {
  using namespace spine;
  uint32_t min_anchor = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1]))
                                 : 20;
  if (min_anchor == 0) min_anchor = 20;

  // Two "strains": a genome and a divergent copy with substitutions and
  // indels (as two isolates of the same organism would look).
  seq::GeneratorOptions gen;
  gen.length = 1'000'000;
  gen.seed = 2026;
  std::string reference = seq::GenerateSequence(Alphabet::Dna(), gen);
  seq::MutateOptions mut;
  mut.seed = 2027;
  mut.substitution_rate = 0.01;
  mut.indel_rate = 0.0005;
  std::string sample = seq::MutateCopy(Alphabet::Dna(), reference, mut);
  std::printf("reference: %zu bp, sample: %zu bp, anchor threshold: %u\n",
              reference.size(), sample.size(), min_anchor);

  align::AlignOptions options;
  options.min_anchor_len = min_anchor;

  WallTimer timer;
  Result<align::AlignmentResult> result =
      align::AlignSequences(reference, sample, options);
  if (!result.ok()) {
    std::fprintf(stderr, "alignment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  double secs = timer.ElapsedSeconds();

  std::printf("\naligned in %.2f s\n", secs);
  std::printf("  anchors in chain : %zu\n", result->chain.anchors.size());
  std::printf("  anchored bases   : %llu\n",
              static_cast<unsigned long long>(result->anchored_bases));
  std::printf("  gap-aligned bases: %llu (%llu edits)\n",
              static_cast<unsigned long long>(result->gap_aligned_bases),
              static_cast<unsigned long long>(result->gap_edits));
  std::printf("  unaligned        : %llu query / %llu reference\n",
              static_cast<unsigned long long>(result->unaligned_query),
              static_cast<unsigned long long>(result->unaligned_data));
  std::printf("  query coverage   : %.2f%%\n",
              result->QueryCoverage(sample.size()) * 100.0);
  std::printf("  identity         : %.2f%%\n", result->Identity() * 100.0);

  std::printf("\nfirst anchors of the chain (query @ reference, length):\n");
  for (size_t i = 0; i < result->chain.anchors.size() && i < 8; ++i) {
    const auto& anchor = result->chain.anchors[i];
    std::printf("  %8u @ %8u, %5u bp\n", anchor.query_pos, anchor.data_pos,
                anchor.length);
  }

  // MUM mode: only anchors unique in the reference.
  options.unique_anchors_only = true;
  Result<align::AlignmentResult> mum =
      align::AlignSequences(reference, sample, options);
  if (mum.ok()) {
    std::printf("\nMUM mode (unique anchors only): %zu anchors, coverage "
                "%.2f%%, identity %.2f%%\n",
                mum->chain.anchors.size(),
                mum->QueryCoverage(sample.size()) * 100.0,
                mum->Identity() * 100.0);
  }
  return 0;
}
