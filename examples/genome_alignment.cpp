// Genome alignment seeding: find all maximal matching substrings above a
// length threshold between two genomes — the paper's Section 4 workload
// (the core of MUMmer-style whole-genome alignment).
//
// Part 1 replays the paper's own example (strings S1/S2, threshold 6).
// Part 2 aligns a synthetic genome against a divergent "strain" and
// cross-checks SPINE's matches against the suffix-tree baseline.
//
//   $ ./examples/genome_alignment

#include <cstdio>
#include <string>

#include "compact/compact_spine.h"
#include "core/matcher.h"
#include "seq/generator.h"
#include "suffix_tree/st_matcher.h"
#include "suffix_tree/suffix_tree.h"

namespace {

void AlignAndPrint(const std::string& s1, const std::string& s2,
                   uint32_t threshold) {
  using namespace spine;
  CompactSpineIndex index(Alphabet::Dna());
  Status status = index.AppendString(s1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::exit(1);
  }
  auto matches = GenericFindMaximalMatches(index, s2, threshold);
  auto expanded = GenericCollectAllOccurrences(index, matches);
  std::printf("S1 (%zu chars) vs S2 (%zu chars), threshold %u: %zu maximal "
              "matches\n",
              s1.size(), s2.size(), threshold, matches.size());
  size_t shown = 0;
  for (const auto& match : expanded) {
    if (++shown > 10) {
      std::printf("  ... (%zu more)\n", expanded.size() - 10);
      break;
    }
    std::printf("  len %3u  S2[%u..%u) \"%s\"  S1 positions:",
                match.match.length, match.match.query_pos,
                match.match.query_pos + match.match.length,
                s2.substr(match.match.query_pos,
                          std::min<uint32_t>(match.match.length, 40))
                    .c_str());
    for (size_t k = 0; k < match.data_positions.size() && k < 8; ++k) {
      std::printf(" %u", match.data_positions[k]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace spine;

  std::printf("=== Part 1: the paper's Section 4 example ===\n");
  const std::string s1 = "acaccgacgatacgagattacgagacgagaatacaacag";
  const std::string s2 = "catagagagacgattacgagaaaacgggaaagacgatcc";
  AlignAndPrint(s1, s2, 6);

  std::printf("\n=== Part 2: synthetic genome vs divergent strain ===\n");
  seq::GeneratorOptions gen;
  gen.length = 200'000;
  gen.seed = 42;
  std::string genome = seq::GenerateSequence(Alphabet::Dna(), gen);
  seq::MutateOptions mut;
  mut.seed = 43;
  mut.substitution_rate = 0.02;
  std::string strain = seq::MutateCopy(Alphabet::Dna(), genome, mut);
  AlignAndPrint(genome, strain, 25);

  std::printf("\n=== Cross-check against the suffix-tree baseline ===\n");
  CompactSpineIndex index(Alphabet::Dna());
  (void)index.AppendString(genome);
  SuffixTree tree(Alphabet::Dna());
  (void)tree.AppendString(genome);
  SearchStats spine_stats, st_stats;
  auto spine_matches =
      GenericFindMaximalMatches(index, strain, 25, &spine_stats);
  auto st_matches = GenericStFindMaximalMatches(tree, strain, 25, &st_stats);
  bool identical = spine_matches.size() == st_matches.size();
  for (size_t k = 0; identical && k < spine_matches.size(); ++k) {
    identical = spine_matches[k].query_pos == st_matches[k].query_pos &&
                spine_matches[k].length == st_matches[k].length;
  }
  std::printf("match sets identical: %s (%zu matches)\n",
              identical ? "yes" : "NO", spine_matches.size());
  std::printf("nodes checked — suffix tree: %llu, SPINE: %llu (set-based "
              "links win)\n",
              static_cast<unsigned long long>(st_stats.nodes_checked +
                                              st_stats.link_traversals),
              static_cast<unsigned long long>(spine_stats.nodes_checked +
                                              spine_stats.link_traversals));
  return identical ? 0 : 1;
}
