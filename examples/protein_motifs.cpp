// Protein motif search over a multi-sequence (generalized) SPINE index:
// index a set of protein sequences together and locate motif hits as
// (sequence, offset) pairs — the generalized-suffix-tree-style usage the
// paper sketches in Section 1.1, over the 20-letter residue alphabet of
// Section 5.2.
//
//   $ ./examples/protein_motifs

#include <cstdio>
#include <string>
#include <vector>

#include "core/generalized_spine.h"
#include "seq/generator.h"

int main() {
  using namespace spine;

  GeneralizedSpineIndex index(Alphabet::Protein());

  // A few synthetic "proteins", with a known motif planted in some.
  const std::string motif = "HEAGAWGHEE";  // a classic textbook motif
  std::vector<std::string> proteins;
  seq::GeneratorOptions gen;
  gen.length = 3000;
  for (uint32_t k = 0; k < 6; ++k) {
    gen.seed = 100 + k;
    std::string protein = seq::GenerateSequence(Alphabet::Protein(), gen);
    if (k % 2 == 0) {
      // Plant the motif at a deterministic position.
      protein.replace(500 + 37 * k, motif.size(), motif);
    }
    proteins.push_back(protein);
  }

  for (const std::string& protein : proteins) {
    Status status = index.AddString(protein);
    if (!status.ok()) {
      std::fprintf(stderr, "AddString failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  std::printf("indexed %u protein sequences (%zu residues total) in one "
              "SPINE index\n\n",
              index.string_count(), proteins.size() * gen.length);

  // Full-motif hits.
  std::printf("hits for motif \"%s\":\n", motif.c_str());
  for (const auto& hit : index.FindAll(motif)) {
    std::printf("  protein %u @ offset %u\n", hit.string_id, hit.offset);
  }

  // Shorter fragments hit more sequences (including random background).
  for (const char* fragment : {"GAWGH", "AWG"}) {
    auto hits = index.FindAll(fragment);
    std::printf("fragment \"%s\": %zu hit(s)", fragment, hits.size());
    size_t shown = 0;
    for (const auto& hit : hits) {
      if (++shown > 6) {
        std::printf(" ...");
        break;
      }
      std::printf("  [%u@%u]", hit.string_id, hit.offset);
    }
    std::printf("\n");
  }

  // Motifs never match across sequence boundaries.
  std::printf("\nContains(\"%s\") = %s (planted), "
              "Contains(\"WWWWWWWW\") = %s (absent)\n",
              motif.c_str(), index.Contains(motif) ? "yes" : "no",
              index.Contains("WWWWWWWW") ? "yes" : "no");
  return 0;
}
