// Quickstart: build a SPINE index over a DNA string, run the three
// search operations, inspect the structure, and persist the compact
// index to disk.
//
//   $ ./examples/quickstart
//
// Uses the paper's running example string "aaccacaaca" (Figures 1-3) so
// the printed structure can be compared against the paper directly.

#include <cstdio>
#include <string>

#include "compact/compact_spine.h"
#include "compact/serializer.h"
#include "core/matcher.h"
#include "core/spine_index.h"

int main() {
  using namespace spine;

  // 1. Build: SPINE is online — characters stream in one at a time.
  SpineIndex index(Alphabet::Dna());
  const std::string data = "aaccacaaca";
  Status status = index.AppendString(data);
  if (!status.ok()) {
    std::fprintf(stderr, "build failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("indexed %llu characters; the index is self-contained: "
              "reconstructed = %s\n\n",
              static_cast<unsigned long long>(index.size()),
              index.ReconstructString().c_str());

  // 2. Point lookups.
  for (const char* pattern : {"cac", "acca", "accaa"}) {
    std::printf("Contains(\"%s\") = %s\n", pattern,
                index.Contains(pattern) ? "yes" : "no");
  }

  // 3. All occurrences (the paper's target-node-buffer scan).
  std::printf("\nFindAll(\"ac\") start positions:");
  for (uint32_t pos : index.FindAll("ac")) std::printf(" %u", pos);
  std::printf("   (expected: 1 4 7)\n");

  // 4. Maximal matches against a second string (mini alignment).
  auto matches = FindMaximalMatches(index, "ccacaacag", 3);
  std::printf("\nmaximal matches of \"ccacaacag\" (>= 3 chars):\n");
  for (const auto& match : CollectAllOccurrences(index, matches)) {
    std::printf("  query[%u..%u) = \"%s\" occurs in data at:",
                match.match.query_pos,
                match.match.query_pos + match.match.length,
                std::string("ccacaacag")
                    .substr(match.match.query_pos, match.match.length)
                    .c_str());
    for (uint32_t pos : match.data_positions) std::printf(" %u", pos);
    std::printf("\n");
  }

  // 5. The structure itself (compare with the paper's Figure 3).
  std::printf("\n%s", index.DebugString().c_str());

  // 6. The compact (Section 5) layout persists to a single file.
  CompactSpineIndex compact(Alphabet::Dna());
  (void)compact.AppendString(data);
  const std::string path = "/tmp/quickstart_spine.idx";
  status = SaveCompactSpine(compact, path);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  Result<CompactSpineIndex> loaded = LoadCompactSpine(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsaved + reloaded compact index from %s: Contains(\"caca\") "
              "= %s\n",
              path.c_str(), loaded->Contains("caca") ? "yes" : "no");
  return 0;
}
