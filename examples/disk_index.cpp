// Disk-resident indexing: build a SPINE index whose tables live in a
// page file behind a small buffer pool, query it, and inspect the I/O
// behaviour — including the paper's Section 6.2 observation that
// pinning the top of the backbone helps when memory is scarce.
//
//   $ ./examples/disk_index

#include <cstdio>
#include <string>

#include "core/matcher.h"
#include "seq/generator.h"
#include "storage/disk_model.h"
#include "storage/disk_spine.h"

int main() {
  using namespace spine;
  using namespace spine::storage;

  seq::GeneratorOptions gen;
  gen.length = 400'000;
  gen.seed = 11;
  std::string genome = seq::GenerateSequence(Alphabet::Dna(), gen);
  seq::MutateOptions mut;
  mut.seed = 12;
  std::string query =
      seq::MutateCopy(Alphabet::Dna(), genome.substr(0, 50'000), mut);

  DiskCostModel model;
  for (ReplacementPolicy policy :
       {ReplacementPolicy::kLru, ReplacementPolicy::kPinTop}) {
    DiskSpine::Options options;
    options.pool_frames = 256;  // 1 MiB pool for a ~5 MiB index
    options.policy = policy;
    auto index =
        DiskSpine::Create(Alphabet::Dna(), "/tmp/disk_index_example.idx",
                          options);
    if (!index.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    Status status = (*index)->AppendString(genome);
    if (!status.ok()) {
      std::fprintf(stderr, "build failed: %s\n", status.ToString().c_str());
      return 1;
    }
    const IoStats& build_io = (*index)->io_stats();
    std::printf("[%s] build: %llu page accesses, %.1f%% hit rate, "
                "%llu pages used, modeled %.1f s on a 2003 IDE disk\n",
                PolicyName(policy),
                static_cast<unsigned long long>(build_io.accesses()),
                build_io.HitRate() * 100.0,
                static_cast<unsigned long long>((*index)->PagesUsed()),
                model.ModeledSeconds(build_io));

    (*index)->ResetIoStats();
    auto matches = GenericFindMaximalMatches(**index, query, 30);
    const IoStats& search_io = (*index)->io_stats();
    std::printf("[%s] search: %zu maximal matches; %llu misses, "
                "%.1f%% hit rate, modeled %.1f s\n",
                PolicyName(policy), matches.size(),
                static_cast<unsigned long long>(search_io.misses),
                search_io.HitRate() * 100.0,
                model.ModeledSeconds(search_io));

    // Point queries work identically on the disk-resident index.
    std::string probe = genome.substr(123'456, 24);
    auto positions = (*index)->FindAll(probe);
    std::printf("[%s] FindAll(24-mer from offset 123456): %zu occurrence(s), "
                "first at %u\n\n",
                PolicyName(policy), positions.size(),
                positions.empty() ? 0 : positions[0]);
  }
  return 0;
}
